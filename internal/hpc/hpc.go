// Package hpc simulates the hardware-performance-counter telemetry
// substrate of the paper's second HMD (Zhou et al. [21], [22]): per
// sampling window, a vector of micro-architectural event counts observed
// while a workload runs.
//
// Each application is a mixture over five behaviour components (compute-,
// memory-, branch-, syscall- and crypto-bound); a window's counters are
// log-normal draws around the mixture's event profile. The catalogue in
// package workload gives benign and malware applications heavily
// overlapping mixtures, reproducing the class overlap that the paper
// diagnoses as the HPC dataset's fundamental limitation.
package hpc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"trusthmd/internal/workload"
)

// EventNames lists the 16 simulated HPC events, in the order counters are
// emitted. The first eight positions are relied upon by feature.HPCVector's
// derived rates.
var EventNames = []string{
	"cpu-cycles",
	"instructions",
	"branches",
	"branch-misses",
	"cache-references",
	"cache-misses",
	"llc-loads",
	"syscalls",
	"llc-stores",
	"dtlb-misses",
	"itlb-misses",
	"page-faults",
	"context-switches",
	"stalled-cycles",
	"bus-cycles",
	"prefetches",
}

// NumEvents is the number of simulated counters per window.
const NumEvents = 16

// Component is one micro-architectural behaviour archetype: a profile of
// mean log event counts for a baseline-intensity window.
type Component struct {
	Name    string
	LogMean [NumEvents]float64
}

// Components returns the five behaviour archetypes addressed by
// workload.HPCBehavior.Mix, in order: compute, memory, branch, syscall,
// crypto.
func Components() []Component {
	// Log-space means (natural log of counts per window). Baseline window
	// retires ~1e7 instructions; profiles shift relative event intensities
	// in the way the archetype suggests (e.g. memory-bound: more cache
	// misses, more stalls, lower IPC).
	ln := math.Log
	return []Component{
		{
			Name: "compute",
			LogMean: [NumEvents]float64{
				ln(1.2e7), ln(1.5e7), ln(2.0e6), ln(4.0e4),
				ln(5.0e5), ln(2.0e4), ln(1.0e4), ln(2.0e3),
				ln(8.0e3), ln(5.0e3), ln(2.0e3), ln(1.0e2),
				ln(5.0e1), ln(1.5e6), ln(2.4e6), ln(3.0e5),
			},
		},
		{
			Name: "memory",
			LogMean: [NumEvents]float64{
				ln(1.4e7), ln(8.0e6), ln(9.0e5), ln(3.0e4),
				ln(2.5e6), ln(6.0e5), ln(4.0e5), ln(3.0e3),
				ln(2.0e5), ln(8.0e4), ln(6.0e3), ln(8.0e2),
				ln(1.0e2), ln(6.0e6), ln(2.8e6), ln(9.0e5),
			},
		},
		{
			Name: "branch",
			LogMean: [NumEvents]float64{
				ln(1.1e7), ln(1.1e7), ln(3.5e6), ln(3.0e5),
				ln(8.0e5), ln(6.0e4), ln(3.0e4), ln(4.0e3),
				ln(2.0e4), ln(1.0e4), ln(8.0e3), ln(2.0e2),
				ln(8.0e1), ln(2.5e6), ln(2.2e6), ln(2.0e5),
			},
		},
		{
			Name: "syscall",
			LogMean: [NumEvents]float64{
				ln(9.0e6), ln(6.0e6), ln(1.2e6), ln(8.0e4),
				ln(1.2e6), ln(1.5e5), ln(9.0e4), ln(5.0e4),
				ln(6.0e4), ln(3.0e4), ln(2.0e4), ln(3.0e3),
				ln(1.2e3), ln(3.5e6), ln(1.8e6), ln(3.0e5),
			},
		},
		{
			Name: "crypto",
			LogMean: [NumEvents]float64{
				ln(1.3e7), ln(1.6e7), ln(9.0e5), ln(1.5e4),
				ln(9.0e5), ln(1.0e5), ln(6.0e4), ln(1.5e3),
				ln(4.0e4), ln(1.5e4), ln(2.5e3), ln(1.2e2),
				ln(4.0e1), ln(2.0e6), ln(2.6e6), ln(6.0e5),
			},
		},
	}
}

// Generator draws counter windows for application behaviours.
type Generator struct {
	comps []Component
}

// NewGenerator returns a generator over the standard components.
func NewGenerator() *Generator {
	return &Generator{comps: Components()}
}

// NumComponents returns the number of behaviour components.
func (g *Generator) NumComponents() int { return len(g.comps) }

// Window draws one counter window for behaviour b: per event, the mixture
// of component log-means, shifted by log(Intensity), plus N(0, Spread)
// log-normal noise.
func (g *Generator) Window(b workload.HPCBehavior, rng *rand.Rand) ([]float64, error) {
	if err := b.Validate(len(g.comps)); err != nil {
		return nil, err
	}
	out := make([]float64, NumEvents)
	shift := math.Log(b.Intensity)
	for e := 0; e < NumEvents; e++ {
		var lm float64
		for c, w := range b.Mix {
			lm += w * g.comps[c].LogMean[e]
		}
		lm += shift + rng.NormFloat64()*b.Spread
		out[e] = math.Exp(lm)
	}
	return out, nil
}

// ErrNoApps reports an empty behaviour list.
var ErrNoApps = errors.New("hpc: no applications")

// WindowBatch draws n windows per behaviour and emits each.
func (g *Generator) WindowBatch(apps []workload.HPCBehavior, n int, rng *rand.Rand, emit func(workload.HPCBehavior, []float64) error) error {
	if len(apps) == 0 {
		return ErrNoApps
	}
	if n < 1 {
		return fmt.Errorf("hpc: need n>=1 windows, got %d", n)
	}
	for _, app := range apps {
		for i := 0; i < n; i++ {
			w, err := g.Window(app, rng)
			if err != nil {
				return fmt.Errorf("hpc: %s: %w", app.Name, err)
			}
			if err := emit(app, w); err != nil {
				return err
			}
		}
	}
	return nil
}
