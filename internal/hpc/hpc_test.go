package hpc

import (
	"math"
	"math/rand"
	"testing"

	"trusthmd/internal/workload"
	"trusthmd/pkg/dataset"
)

func TestComponentsShape(t *testing.T) {
	comps := Components()
	if len(comps) != 5 {
		t.Fatalf("%d components, want 5", len(comps))
	}
	if len(EventNames) != NumEvents {
		t.Fatalf("%d event names, want %d", len(EventNames), NumEvents)
	}
	for _, c := range comps {
		if c.Name == "" {
			t.Fatal("unnamed component")
		}
		for e, lm := range c.LogMean {
			if math.IsNaN(lm) || math.IsInf(lm, 0) {
				t.Fatalf("%s: bad log mean at event %d", c.Name, e)
			}
		}
	}
}

func TestComponentProfilesDiffer(t *testing.T) {
	comps := Components()
	// Memory-bound must have more cache misses (event 5) than compute.
	var compute, memory Component
	for _, c := range comps {
		switch c.Name {
		case "compute":
			compute = c
		case "memory":
			memory = c
		}
	}
	if memory.LogMean[5] <= compute.LogMean[5] {
		t.Fatal("memory component must have higher cache-miss mean")
	}
	// Crypto retires more instructions per cycle than memory-bound.
	var crypto Component
	for _, c := range comps {
		if c.Name == "crypto" {
			crypto = c
		}
	}
	cryptoIPC := crypto.LogMean[1] - crypto.LogMean[0]
	memIPC := memory.LogMean[1] - memory.LogMean[0]
	if cryptoIPC <= memIPC {
		t.Fatal("crypto IPC must exceed memory-bound IPC")
	}
}

func TestWindowShapeAndPositivity(t *testing.T) {
	g := NewGenerator()
	rng := rand.New(rand.NewSource(1))
	for _, app := range workload.HPCApps() {
		w, err := g.Window(app, rng)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if len(w) != NumEvents {
			t.Fatalf("%s: window has %d counters", app.Name, len(w))
		}
		for e, v := range w {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: counter %d is %v", app.Name, e, v)
			}
		}
	}
}

func TestWindowRejectsBadBehaviour(t *testing.T) {
	g := NewGenerator()
	bad := workload.HPCBehavior{
		App: workload.App{Name: "x", Label: dataset.Benign},
		Mix: []float64{1}, Intensity: 1,
	}
	if _, err := g.Window(bad, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestIntensityScalesCounts(t *testing.T) {
	g := NewGenerator()
	base := workload.HPCApps()[0]
	heavy := base
	heavy.Intensity = base.Intensity * 4
	heavy.Spread = 0.01
	light := base
	light.Spread = 0.01

	rng := rand.New(rand.NewSource(2))
	var sumHeavy, sumLight float64
	for i := 0; i < 20; i++ {
		wh, err := g.Window(heavy, rng)
		if err != nil {
			t.Fatal(err)
		}
		wl, err := g.Window(light, rng)
		if err != nil {
			t.Fatal(err)
		}
		sumHeavy += wh[1]
		sumLight += wl[1]
	}
	if sumHeavy <= 3*sumLight {
		t.Fatalf("4x intensity should give ~4x instructions: %v vs %v", sumHeavy, sumLight)
	}
}

func TestClassOverlap(t *testing.T) {
	// The defining property of the HPC substrate: benign and malware
	// windows overlap. Check that per-event mean log-count gaps between the
	// classes are small relative to the within-class spread.
	g := NewGenerator()
	rng := rand.New(rand.NewSource(3))
	var logB, logM []float64
	for _, app := range workload.HPCApps() {
		if !app.Known {
			continue
		}
		for i := 0; i < 30; i++ {
			w, err := g.Window(app, rng)
			if err != nil {
				t.Fatal(err)
			}
			v := math.Log(w[1]) // instructions
			if app.Label == dataset.Benign {
				logB = append(logB, v)
			} else {
				logM = append(logM, v)
			}
		}
	}
	meanStd := func(xs []float64) (float64, float64) {
		var m float64
		for _, v := range xs {
			m += v
		}
		m /= float64(len(xs))
		var ss float64
		for _, v := range xs {
			ss += (v - m) * (v - m)
		}
		return m, math.Sqrt(ss / float64(len(xs)-1))
	}
	mb, sb := meanStd(logB)
	mm, sm := meanStd(logM)
	gap := math.Abs(mb - mm)
	pooled := (sb + sm) / 2
	if gap > pooled {
		t.Fatalf("classes too separated: gap %v vs pooled std %v", gap, pooled)
	}
}

func TestWindowBatch(t *testing.T) {
	g := NewGenerator()
	apps := workload.HPCApps()[:2]
	count := 0
	err := g.WindowBatch(apps, 3, rand.New(rand.NewSource(4)), func(a workload.HPCBehavior, w []float64) error {
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 6 {
		t.Fatalf("emitted %d windows, want 6", count)
	}
	if err := g.WindowBatch(nil, 1, rand.New(rand.NewSource(1)), nil); err == nil {
		t.Fatal("expected no-apps error")
	}
	if err := g.WindowBatch(apps, 0, rand.New(rand.NewSource(1)), nil); err == nil {
		t.Fatal("expected n error")
	}
}

func TestNumComponents(t *testing.T) {
	if NewGenerator().NumComponents() != 5 {
		t.Fatal("component count")
	}
}
