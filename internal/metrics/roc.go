package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ROCPoint is one operating point of a receiver operating characteristic.
type ROCPoint struct {
	Threshold float64
	TPR       float64 // true positive rate (recall)
	FPR       float64 // false positive rate
}

// ROC computes the ROC curve of a score-based detector: scores are
// "malware-ness" values (higher = more likely malware, label 1). Points
// are ordered from the strictest threshold (FPR 0) to the loosest (FPR 1),
// with one point per distinct score.
func ROC(yTrue []int, scores []float64) ([]ROCPoint, error) {
	if len(yTrue) == 0 {
		return nil, ErrNoSamples
	}
	if len(yTrue) != len(scores) {
		return nil, fmt.Errorf("metrics: %d labels vs %d scores", len(yTrue), len(scores))
	}
	var pos, neg int
	for i, lab := range yTrue {
		switch lab {
		case 1:
			pos++
		case 0:
			neg++
		default:
			return nil, fmt.Errorf("metrics: label %d at sample %d is not binary", lab, i)
		}
		if math.IsNaN(scores[i]) {
			return nil, fmt.Errorf("metrics: NaN score at sample %d", i)
		}
	}
	if pos == 0 || neg == 0 {
		return nil, errors.New("metrics: ROC needs both classes")
	}

	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	out := []ROCPoint{{Threshold: math.Inf(1), TPR: 0, FPR: 0}}
	tp, fp := 0, 0
	for k := 0; k < len(idx); {
		thr := scores[idx[k]]
		// Consume all samples tied at this score before emitting a point.
		for k < len(idx) && scores[idx[k]] == thr {
			if yTrue[idx[k]] == 1 {
				tp++
			} else {
				fp++
			}
			k++
		}
		out = append(out, ROCPoint{
			Threshold: thr,
			TPR:       float64(tp) / float64(pos),
			FPR:       float64(fp) / float64(neg),
		})
	}
	return out, nil
}

// AUC returns the area under the ROC curve by trapezoidal integration.
func AUC(yTrue []int, scores []float64) (float64, error) {
	roc, err := ROC(yTrue, scores)
	if err != nil {
		return 0, err
	}
	var area float64
	for i := 1; i < len(roc); i++ {
		dx := roc[i].FPR - roc[i-1].FPR
		area += dx * (roc[i].TPR + roc[i-1].TPR) / 2
	}
	return area, nil
}

// Brier returns the Brier score of probabilistic predictions: the mean
// squared difference between P(y=1) and the outcome. Lower is better;
// 0.25 is the score of a constant 0.5 prediction.
func Brier(yTrue []int, probs []float64) (float64, error) {
	if len(yTrue) == 0 {
		return 0, ErrNoSamples
	}
	if len(yTrue) != len(probs) {
		return 0, fmt.Errorf("metrics: %d labels vs %d probabilities", len(yTrue), len(probs))
	}
	var sum float64
	for i, lab := range yTrue {
		if lab != 0 && lab != 1 {
			return 0, fmt.Errorf("metrics: label %d at sample %d is not binary", lab, i)
		}
		p := probs[i]
		if p < 0 || p > 1 || math.IsNaN(p) {
			return 0, fmt.Errorf("metrics: probability %v at sample %d outside [0,1]", p, i)
		}
		d := p - float64(lab)
		sum += d * d
	}
	return sum / float64(len(yTrue)), nil
}

// ECE returns the expected calibration error with equal-width confidence
// bins: the weighted mean |accuracy(bin) - confidence(bin)| over predicted
// P(y=1) values. bins must be >= 1.
func ECE(yTrue []int, probs []float64, bins int) (float64, error) {
	if bins < 1 {
		return 0, fmt.Errorf("metrics: ECE needs >=1 bin, got %d", bins)
	}
	if len(yTrue) == 0 {
		return 0, ErrNoSamples
	}
	if len(yTrue) != len(probs) {
		return 0, fmt.Errorf("metrics: %d labels vs %d probabilities", len(yTrue), len(probs))
	}
	type bucket struct {
		n       int
		correct int
		confSum float64
	}
	bs := make([]bucket, bins)
	for i, lab := range yTrue {
		if lab != 0 && lab != 1 {
			return 0, fmt.Errorf("metrics: label %d at sample %d is not binary", lab, i)
		}
		p := probs[i]
		if p < 0 || p > 1 || math.IsNaN(p) {
			return 0, fmt.Errorf("metrics: probability %v at sample %d outside [0,1]", p, i)
		}
		pred := 0
		conf := 1 - p
		if p >= 0.5 {
			pred = 1
			conf = p
		}
		b := int(conf * float64(bins))
		if b == bins { // conf == 1.0
			b = bins - 1
		}
		bs[b].n++
		bs[b].confSum += conf
		if pred == lab {
			bs[b].correct++
		}
	}
	var ece float64
	for _, b := range bs {
		if b.n == 0 {
			continue
		}
		acc := float64(b.correct) / float64(b.n)
		conf := b.confSum / float64(b.n)
		ece += float64(b.n) / float64(len(yTrue)) * math.Abs(acc-conf)
	}
	return ece, nil
}
