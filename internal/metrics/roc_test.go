package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestROCPerfectSeparation(t *testing.T) {
	yTrue := []int{0, 0, 1, 1}
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	roc, err := ROC(yTrue, scores)
	if err != nil {
		t.Fatal(err)
	}
	// Curve must pass through (0,1): all positives found before any FP.
	found := false
	for _, p := range roc {
		if p.FPR == 0 && p.TPR == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("perfect classifier ROC missing (0,1): %+v", roc)
	}
	auc, err := AUC(yTrue, scores)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-1) > 1e-12 {
		t.Fatalf("AUC %v, want 1", auc)
	}
}

func TestAUCRandomScoresNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 4000
	yTrue := make([]int, n)
	scores := make([]float64, n)
	for i := range yTrue {
		yTrue[i] = rng.Intn(2)
		scores[i] = rng.Float64()
	}
	auc, err := AUC(yTrue, scores)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.05 {
		t.Fatalf("random AUC %v, want ~0.5", auc)
	}
}

func TestAUCInverted(t *testing.T) {
	yTrue := []int{0, 0, 1, 1}
	scores := []float64{0.9, 0.8, 0.2, 0.1} // anti-correlated
	auc, err := AUC(yTrue, scores)
	if err != nil {
		t.Fatal(err)
	}
	if auc > 1e-12 {
		t.Fatalf("inverted AUC %v, want 0", auc)
	}
}

func TestROCTiedScores(t *testing.T) {
	yTrue := []int{1, 0, 1, 0}
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	roc, err := ROC(yTrue, scores)
	if err != nil {
		t.Fatal(err)
	}
	// All ties collapse to a single diagonal step.
	last := roc[len(roc)-1]
	if last.TPR != 1 || last.FPR != 1 {
		t.Fatalf("last point %+v", last)
	}
	if len(roc) != 2 {
		t.Fatalf("tied scores should give 2 points, got %d", len(roc))
	}
	auc, err := AUC(yTrue, scores)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("tied AUC %v, want 0.5", auc)
	}
}

func TestROCErrors(t *testing.T) {
	if _, err := ROC(nil, nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := ROC([]int{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := ROC([]int{2, 0}, []float64{1, 2}); err == nil {
		t.Fatal("expected label error")
	}
	if _, err := ROC([]int{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("expected single-class error")
	}
	if _, err := ROC([]int{1, 0}, []float64{math.NaN(), 2}); err == nil {
		t.Fatal("expected NaN error")
	}
}

func TestAUCRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		yTrue := make([]int, n)
		scores := make([]float64, n)
		for i := range yTrue {
			yTrue[i] = rng.Intn(2)
			scores[i] = rng.NormFloat64()
		}
		yTrue[0], yTrue[1] = 0, 1 // both classes guaranteed
		auc, err := AUC(yTrue, scores)
		if err != nil {
			return false
		}
		return auc >= -1e-12 && auc <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBrier(t *testing.T) {
	b, err := Brier([]int{1, 0}, []float64{1, 0})
	if err != nil || b != 0 {
		t.Fatalf("perfect brier %v err %v", b, err)
	}
	b, err = Brier([]int{1, 0}, []float64{0.5, 0.5})
	if err != nil || math.Abs(b-0.25) > 1e-12 {
		t.Fatalf("uniform brier %v err %v", b, err)
	}
	b, err = Brier([]int{1}, []float64{0})
	if err != nil || b != 1 {
		t.Fatalf("worst brier %v err %v", b, err)
	}
}

func TestBrierErrors(t *testing.T) {
	if _, err := Brier(nil, nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := Brier([]int{1}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := Brier([]int{2}, []float64{0.5}); err == nil {
		t.Fatal("expected label error")
	}
	if _, err := Brier([]int{1}, []float64{1.5}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestECEPerfectlyCalibrated(t *testing.T) {
	// Confidence 1.0 predictions that are always right: ECE 0.
	yTrue := []int{1, 1, 0, 0}
	probs := []float64{1, 1, 0, 0}
	e, err := ECE(yTrue, probs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if e > 1e-12 {
		t.Fatalf("ECE %v, want 0", e)
	}
}

func TestECEOverconfident(t *testing.T) {
	// Always predicts malware with certainty but is right half the time.
	yTrue := []int{1, 0, 1, 0}
	probs := []float64{1, 1, 1, 1}
	e, err := ECE(yTrue, probs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-0.5) > 1e-12 {
		t.Fatalf("ECE %v, want 0.5", e)
	}
}

func TestECEErrors(t *testing.T) {
	if _, err := ECE(nil, nil, 10); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := ECE([]int{1}, []float64{0.5}, 0); err == nil {
		t.Fatal("expected bins error")
	}
	if _, err := ECE([]int{1}, []float64{0.5, 0.1}, 5); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := ECE([]int{3}, []float64{0.5}, 5); err == nil {
		t.Fatal("expected label error")
	}
	if _, err := ECE([]int{1}, []float64{-0.1}, 5); err == nil {
		t.Fatal("expected range error")
	}
}

func TestECERangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80)
		yTrue := make([]int, n)
		probs := make([]float64, n)
		for i := range yTrue {
			yTrue[i] = rng.Intn(2)
			probs[i] = rng.Float64()
		}
		e, err := ECE(yTrue, probs, 10)
		if err != nil {
			return false
		}
		return e >= 0 && e <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
