package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfusionBasics(t *testing.T) {
	yTrue := []int{1, 1, 0, 0, 1, 0}
	yPred := []int{1, 0, 0, 1, 1, 0}
	c, err := NewConfusion(yTrue, yPred)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 2 || c.FN != 1 || c.FP != 1 || c.TN != 2 {
		t.Fatalf("confusion %+v", c)
	}
	if c.Total() != 6 {
		t.Fatalf("total %d", c.Total())
	}
	if math.Abs(c.Accuracy()-4.0/6) > 1e-12 {
		t.Fatalf("acc %v", c.Accuracy())
	}
	if math.Abs(c.Precision()-2.0/3) > 1e-12 {
		t.Fatalf("prec %v", c.Precision())
	}
	if math.Abs(c.Recall()-2.0/3) > 1e-12 {
		t.Fatalf("rec %v", c.Recall())
	}
	if math.Abs(c.F1()-2.0/3) > 1e-12 {
		t.Fatalf("f1 %v", c.F1())
	}
	if math.Abs(c.FalsePositiveRate()-1.0/3) > 1e-12 {
		t.Fatalf("fpr %v", c.FalsePositiveRate())
	}
	if c.String() == "" {
		t.Fatal("empty string")
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.FalsePositiveRate() != 0 {
		t.Fatal("empty confusion should score zero everywhere")
	}
	// All negative ground truth, all negative predictions.
	c2, err := NewConfusion([]int{0, 0}, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Precision() != 0 || c2.Recall() != 0 {
		t.Fatal("degenerate precision/recall should be 0")
	}
	if c2.Accuracy() != 1 {
		t.Fatal("accuracy should be 1")
	}
}

func TestConfusionErrors(t *testing.T) {
	if _, err := NewConfusion([]int{1}, []int{1, 0}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := NewConfusion([]int{2}, []int{1}); err == nil {
		t.Fatal("expected label error")
	}
	var c Confusion
	if err := c.Observe(0, 3); err == nil {
		t.Fatal("expected label error")
	}
}

func TestScore(t *testing.T) {
	rep, err := Score([]int{1, 0, 1, 0}, []int{1, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.F1 != 1 || rep.Accuracy != 1 || rep.N != 4 {
		t.Fatalf("report %+v", rep)
	}
	if _, err := Score(nil, nil); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestScoreAccepted(t *testing.T) {
	yTrue := []int{1, 0, 1, 0}
	yPred := []int{0, 0, 1, 1} // errors at 0 and 3
	accepted := []bool{false, true, true, false}
	rep, rej, err := ScoreAccepted(yTrue, yPred, accepted)
	if err != nil {
		t.Fatal(err)
	}
	if rej != 0.5 {
		t.Fatalf("rejected %v", rej)
	}
	if rep.Accuracy != 1 || rep.N != 2 {
		t.Fatalf("report %+v", rep)
	}
}

func TestScoreAcceptedAllRejected(t *testing.T) {
	rep, rej, err := ScoreAccepted([]int{1}, []int{0}, []bool{false})
	if err != nil {
		t.Fatal(err)
	}
	if rej != 1 || rep.N != 0 {
		t.Fatalf("rej=%v rep=%+v", rej, rep)
	}
}

func TestScoreAcceptedErrors(t *testing.T) {
	if _, _, err := ScoreAccepted(nil, nil, nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, _, err := ScoreAccepted([]int{1}, []int{1}, []bool{true, false}); err == nil {
		t.Fatal("expected length error")
	}
}

// Property: rejecting only wrong predictions can never lower accuracy or F1
// computed on the kept set, relative to keeping everything.
func TestRejectionImprovesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		yTrue := make([]int, n)
		yPred := make([]int, n)
		accepted := make([]bool, n)
		anyCorrect := false
		for i := range yTrue {
			yTrue[i] = rng.Intn(2)
			yPred[i] = rng.Intn(2)
			accepted[i] = yTrue[i] == yPred[i] // oracle rejector
			anyCorrect = anyCorrect || accepted[i]
		}
		if !anyCorrect {
			return true
		}
		full, err := Score(yTrue, yPred)
		if err != nil {
			return false
		}
		kept, _, err := ScoreAccepted(yTrue, yPred, accepted)
		if err != nil {
			return false
		}
		return kept.Accuracy >= full.Accuracy-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: F1 is always within [0,1] and 0 <= accuracy <= 1.
func TestScoreRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		yTrue := make([]int, n)
		yPred := make([]int, n)
		for i := range yTrue {
			yTrue[i] = rng.Intn(2)
			yPred[i] = rng.Intn(2)
		}
		rep, err := Score(yTrue, yPred)
		if err != nil {
			return false
		}
		ok := func(v float64) bool { return v >= 0 && v <= 1 }
		return ok(rep.Accuracy) && ok(rep.Precision) && ok(rep.Recall) && ok(rep.F1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
