// Package metrics implements the binary-classification scores the paper
// reports (accuracy, precision, recall, F1) together with confusion
// matrices and rejection-aware evaluation: scoring only the predictions a
// trusted HMD accepts, which is how Fig. 7b's F1-vs-threshold curves are
// produced.
package metrics

import (
	"errors"
	"fmt"
)

// ErrNoSamples reports evaluation over an empty prediction set.
var ErrNoSamples = errors.New("metrics: no samples")

// Confusion is a binary confusion matrix with malware (label 1) as the
// positive class, following the paper's convention.
type Confusion struct {
	TP, FP, TN, FN int
}

// NewConfusion tallies predictions against ground truth. Labels must be
// 0 (benign) or 1 (malware).
func NewConfusion(yTrue, yPred []int) (Confusion, error) {
	var c Confusion
	if len(yTrue) != len(yPred) {
		return c, fmt.Errorf("metrics: %d truths vs %d predictions", len(yTrue), len(yPred))
	}
	for i := range yTrue {
		if err := c.Observe(yTrue[i], yPred[i]); err != nil {
			return Confusion{}, fmt.Errorf("metrics: sample %d: %w", i, err)
		}
	}
	return c, nil
}

// Observe folds a single (truth, prediction) pair into the matrix.
func (c *Confusion) Observe(yTrue, yPred int) error {
	switch {
	case yTrue == 1 && yPred == 1:
		c.TP++
	case yTrue == 0 && yPred == 1:
		c.FP++
	case yTrue == 0 && yPred == 0:
		c.TN++
	case yTrue == 1 && yPred == 0:
		c.FN++
	default:
		return fmt.Errorf("labels must be 0 or 1, got truth=%d pred=%d", yTrue, yPred)
	}
	return nil
}

// Total returns the number of observations tallied.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns (TP+TN)/total, or 0 for an empty matrix.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// Precision returns TP/(TP+FP), or 0 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when no positives exist.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall, or 0 when both are 0.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FalsePositiveRate returns FP/(FP+TN), or 0 when no negatives exist.
func (c Confusion) FalsePositiveRate() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// String renders the matrix and derived scores for logs and reports.
func (c Confusion) String() string {
	return fmt.Sprintf("tp=%d fp=%d tn=%d fn=%d acc=%.3f prec=%.3f rec=%.3f f1=%.3f",
		c.TP, c.FP, c.TN, c.FN, c.Accuracy(), c.Precision(), c.Recall(), c.F1())
}

// Report bundles the headline scores of a confusion matrix.
type Report struct {
	Accuracy, Precision, Recall, F1 float64
	N                               int
}

// Score evaluates predictions against ground truth and returns a Report.
func Score(yTrue, yPred []int) (Report, error) {
	if len(yTrue) == 0 {
		return Report{}, ErrNoSamples
	}
	c, err := NewConfusion(yTrue, yPred)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Accuracy:  c.Accuracy(),
		Precision: c.Precision(),
		Recall:    c.Recall(),
		F1:        c.F1(),
		N:         c.Total(),
	}, nil
}

// ScoreAccepted evaluates only the samples for which accepted[i] is true —
// the rejection-aware scoring used for Fig. 7b. It returns the report over
// accepted samples and the fraction rejected. If every sample is rejected
// the report is zero-valued and rejectedFrac is 1.
func ScoreAccepted(yTrue, yPred []int, accepted []bool) (rep Report, rejectedFrac float64, err error) {
	if len(yTrue) == 0 {
		return Report{}, 0, ErrNoSamples
	}
	if len(yTrue) != len(yPred) || len(yTrue) != len(accepted) {
		return Report{}, 0, fmt.Errorf("metrics: mismatched lengths %d/%d/%d", len(yTrue), len(yPred), len(accepted))
	}
	var keptTrue, keptPred []int
	for i, ok := range accepted {
		if ok {
			keptTrue = append(keptTrue, yTrue[i])
			keptPred = append(keptPred, yPred[i])
		}
	}
	rejectedFrac = 1 - float64(len(keptTrue))/float64(len(yTrue))
	if len(keptTrue) == 0 {
		return Report{}, rejectedFrac, nil
	}
	rep, err = Score(keptTrue, keptPred)
	return rep, rejectedFrac, err
}
