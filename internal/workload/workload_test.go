package workload

import (
	"testing"
	"testing/quick"

	"trusthmd/pkg/dataset"
)

func TestDVFSCatalogueValid(t *testing.T) {
	apps := DVFSApps()
	if len(apps) == 0 {
		t.Fatal("empty catalogue")
	}
	names := map[string]bool{}
	var known, unknown, benign, malware int
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		if names[a.Name] {
			t.Fatalf("duplicate app %q", a.Name)
		}
		names[a.Name] = true
		if a.Known {
			known++
		} else {
			unknown++
		}
		if a.Label == dataset.Benign {
			benign++
		} else {
			malware++
		}
	}
	if known < 10 || unknown < 2 {
		t.Fatalf("known=%d unknown=%d", known, unknown)
	}
	if benign == 0 || malware == 0 {
		t.Fatal("need both classes")
	}
	// The unknown bucket must contain both classes (zero-day malware and
	// novel benign apps), as in the paper's setup.
	var ub, um int
	for _, a := range apps {
		if !a.Known {
			if a.Label == dataset.Benign {
				ub++
			} else {
				um++
			}
		}
	}
	if ub == 0 || um == 0 {
		t.Fatalf("unknown bucket needs both classes, got %d benign %d malware", ub, um)
	}
}

func TestDVFSCalibrationGap(t *testing.T) {
	// DESIGN.md §6: known benign loads and known malware loads form
	// separated groups; unknown apps sit in the gap.
	var maxBenign, minUnknown, maxUnknown float64
	minMalware := 1.0
	minUnknown = 1.0
	for _, a := range DVFSApps() {
		switch {
		case !a.Known:
			if a.BaseLoad < minUnknown {
				minUnknown = a.BaseLoad
			}
			if a.BaseLoad > maxUnknown {
				maxUnknown = a.BaseLoad
			}
		case a.Label == dataset.Benign:
			if a.BaseLoad > maxBenign {
				maxBenign = a.BaseLoad
			}
		default:
			// Exempt low-load stealth malware (beacon/botnet): their
			// signature is periodic/bursty structure, not load.
			if a.BaseLoad > 0.3 && a.BaseLoad < minMalware {
				minMalware = a.BaseLoad
			}
		}
	}
	if !(maxBenign < minUnknown && maxUnknown < minMalware) {
		t.Fatalf("unknown band [%v,%v] must sit between benign max %v and malware min %v",
			minUnknown, maxUnknown, maxBenign, minMalware)
	}
}

func TestHPCCatalogueValid(t *testing.T) {
	apps := HPCApps()
	const nComponents = 5
	names := map[string]bool{}
	var known, unknown int
	for _, a := range apps {
		if err := a.Validate(nComponents); err != nil {
			t.Fatal(err)
		}
		if names[a.Name] {
			t.Fatalf("duplicate app %q", a.Name)
		}
		names[a.Name] = true
		if a.Known {
			known++
		} else {
			unknown++
		}
	}
	if known < 10 || unknown < 3 {
		t.Fatalf("known=%d unknown=%d", known, unknown)
	}
}

func TestDVFSValidateRejects(t *testing.T) {
	base := DVFSApps()[0]
	cases := map[string]func(b DVFSBehavior) DVFSBehavior{
		"no name":    func(b DVFSBehavior) DVFSBehavior { b.Name = ""; return b },
		"bad label":  func(b DVFSBehavior) DVFSBehavior { b.Label = 9; return b },
		"load high":  func(b DVFSBehavior) DVFSBehavior { b.BaseLoad = 1.5; return b },
		"load low":   func(b DVFSBehavior) DVFSBehavior { b.BaseLoad = -0.1; return b },
		"amp high":   func(b DVFSBehavior) DVFSBehavior { b.PeriodAmp = 1.2; return b },
		"bad period": func(b DVFSBehavior) DVFSBehavior { b.PeriodAmp = 0.3; b.Period = 1; return b },
		"rate high":  func(b DVFSBehavior) DVFSBehavior { b.BurstRate = 1.2; return b },
		"burst len":  func(b DVFSBehavior) DVFSBehavior { b.BurstRate = 0.1; b.BurstLen = 0; return b },
		"neg noise":  func(b DVFSBehavior) DVFSBehavior { b.Noise = -1; return b },
	}
	for name, mutate := range cases {
		if err := mutate(base).Validate(); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestHPCValidateRejects(t *testing.T) {
	base := HPCApps()[0]
	cases := map[string]func(b HPCBehavior) HPCBehavior{
		"no name":    func(b HPCBehavior) HPCBehavior { b.Name = ""; return b },
		"bad label":  func(b HPCBehavior) HPCBehavior { b.Label = 9; return b },
		"wrong mix":  func(b HPCBehavior) HPCBehavior { b.Mix = []float64{1}; return b },
		"neg weight": func(b HPCBehavior) HPCBehavior { m := append([]float64{}, b.Mix...); m[0] = -0.1; b.Mix = m; return b },
		"bad sum": func(b HPCBehavior) HPCBehavior {
			b.Mix = []float64{0.5, 0.5, 0.5, 0, 0}
			return b
		},
		"intensity": func(b HPCBehavior) HPCBehavior { b.Intensity = 0; return b },
		"spread":    func(b HPCBehavior) HPCBehavior { b.Spread = -1; return b },
	}
	for name, mutate := range cases {
		if err := mutate(base).Validate(5); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestAllocateExact(t *testing.T) {
	got, err := Allocate(2100, 14)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, v := range got {
		if v != 150 {
			t.Fatalf("allocation %v", got)
		}
		sum += v
	}
	if sum != 2100 {
		t.Fatalf("sum %d", sum)
	}
	got, err = Allocate(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 4 || got[1] != 3 || got[2] != 3 {
		t.Fatalf("allocation %v", got)
	}
}

func TestAllocateErrors(t *testing.T) {
	if _, err := Allocate(5, 0); err == nil {
		t.Fatal("expected parts error")
	}
	if _, err := Allocate(-1, 2); err == nil {
		t.Fatal("expected total error")
	}
}

func TestAllocateSumProperty(t *testing.T) {
	f := func(total uint16, parts uint8) bool {
		p := int(parts%40) + 1
		tot := int(total % 10000)
		alloc, err := Allocate(tot, p)
		if err != nil {
			return false
		}
		sum := 0
		min, max := alloc[0], alloc[0]
		for _, v := range alloc {
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return sum == tot && max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKnownFilter(t *testing.T) {
	apps := DVFSApps()
	known := Known(apps, func(a DVFSBehavior) bool { return a.Known })
	for _, a := range known {
		if !a.Known {
			t.Fatal("filter leaked unknown app")
		}
	}
	if len(known) == 0 || len(known) == len(apps) {
		t.Fatalf("filter degenerate: %d of %d", len(known), len(apps))
	}
}
