// Package workload defines the application catalogue behind both telemetry
// substrates: every sample in the synthetic DVFS and HPC datasets is
// attributed to an application (or malware family) with fixed behaviour
// parameters, mirroring the paper's Fig. 6 where signatures are bucketed
// into known and unknown sets *by application* before any train/test split.
//
// The catalogue is calibrated per DESIGN.md §6: known DVFS applications
// occupy distinct regions of behaviour space (disjoint latent classes),
// unknown DVFS applications sit between and beyond those regions
// (out-of-distribution); HPC applications deliberately overlap across the
// benign/malware boundary.
package workload

import (
	"fmt"

	"trusthmd/pkg/dataset"
)

// App identifies one application or malware family.
type App struct {
	// Name is the unique identifier recorded in dataset samples.
	Name string
	// Label is dataset.Benign or dataset.Malware.
	Label int
	// Known marks apps whose signatures may appear in training data; the
	// rest form the unknown (zero-day) bucket.
	Known bool
}

// DVFSBehavior parameterises the CPU-demand process an application drives
// through the SoC power-management governor.
type DVFSBehavior struct {
	App
	// BaseLoad is the mean utilisation demand in [0,1].
	BaseLoad float64
	// PeriodAmp and Period describe a sinusoidal demand component
	// (rendering loops, codec frames, beacon intervals).
	PeriodAmp float64
	Period    int
	// BurstRate is the per-step probability of starting a burst;
	// BurstMag is the burst's additional utilisation; BurstLen its
	// expected duration in steps.
	BurstRate float64
	BurstMag  float64
	BurstLen  int
	// Noise is the standard deviation of white demand noise.
	Noise float64
}

// HPCBehavior parameterises the micro-architectural mixture an application
// exercises. Mix weights address the components of hpc.Components in order
// and must sum to 1.
type HPCBehavior struct {
	App
	// Mix holds the mixture weights over behaviour components.
	Mix []float64
	// Intensity scales overall event counts (instructions retired per
	// sampling window), in multiples of the baseline window.
	Intensity float64
	// Spread is the log-normal sigma of per-sample counter noise; large
	// values blur the app's signature into its neighbours.
	Spread float64
}

// Validate checks the behaviour parameters are inside their domains.
func (b DVFSBehavior) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("workload: unnamed DVFS app")
	}
	if b.Label != dataset.Benign && b.Label != dataset.Malware {
		return fmt.Errorf("workload: %s: bad label %d", b.Name, b.Label)
	}
	if b.BaseLoad < 0 || b.BaseLoad > 1 {
		return fmt.Errorf("workload: %s: base load %v outside [0,1]", b.Name, b.BaseLoad)
	}
	if b.PeriodAmp < 0 || b.PeriodAmp > 1 {
		return fmt.Errorf("workload: %s: period amplitude %v outside [0,1]", b.Name, b.PeriodAmp)
	}
	if b.PeriodAmp > 0 && b.Period < 2 {
		return fmt.Errorf("workload: %s: periodic component needs period >=2, got %d", b.Name, b.Period)
	}
	if b.BurstRate < 0 || b.BurstRate > 1 {
		return fmt.Errorf("workload: %s: burst rate %v outside [0,1]", b.Name, b.BurstRate)
	}
	if b.BurstRate > 0 && b.BurstLen < 1 {
		return fmt.Errorf("workload: %s: bursts need length >=1, got %d", b.Name, b.BurstLen)
	}
	if b.Noise < 0 {
		return fmt.Errorf("workload: %s: negative noise %v", b.Name, b.Noise)
	}
	return nil
}

// Validate checks the mixture is a distribution over nComponents entries.
func (b HPCBehavior) Validate(nComponents int) error {
	if b.Name == "" {
		return fmt.Errorf("workload: unnamed HPC app")
	}
	if b.Label != dataset.Benign && b.Label != dataset.Malware {
		return fmt.Errorf("workload: %s: bad label %d", b.Name, b.Label)
	}
	if len(b.Mix) != nComponents {
		return fmt.Errorf("workload: %s: mix has %d weights, want %d", b.Name, len(b.Mix), nComponents)
	}
	var sum float64
	for i, w := range b.Mix {
		if w < 0 {
			return fmt.Errorf("workload: %s: negative mix weight %v at %d", b.Name, w, i)
		}
		sum += w
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload: %s: mix sums to %v, want 1", b.Name, sum)
	}
	if b.Intensity <= 0 {
		return fmt.Errorf("workload: %s: non-positive intensity %v", b.Name, b.Intensity)
	}
	if b.Spread < 0 {
		return fmt.Errorf("workload: %s: negative spread %v", b.Name, b.Spread)
	}
	return nil
}

// DVFSApps returns the DVFS application catalogue.
//
// Known benign apps span light-to-heavy but *structured* demand; known
// malware families have demand shapes characteristic of their behaviour
// (sustained mining, ransomware sweep bursts, low-duty-cycle beaconing).
// Unknown apps are placed in the gaps between the known clusters: loads
// intermediate between the benign and malware groups, or burst/periodic
// structure no known app exhibits. This realises the paper's DVFS finding —
// unknown signatures are out-of-distribution, in sparsely trained regions
// near the extrapolated class boundary.
func DVFSApps() []DVFSBehavior {
	B, M := dataset.Benign, dataset.Malware
	return []DVFSBehavior{
		// --- Known benign (8 apps) ---
		{App: App{"idle_launcher", B, true}, BaseLoad: 0.06, Noise: 0.02},
		{App: App{"music_player", B, true}, BaseLoad: 0.12, PeriodAmp: 0.05, Period: 24, Noise: 0.02},
		{App: App{"ebook_reader", B, true}, BaseLoad: 0.10, BurstRate: 0.01, BurstMag: 0.25, BurstLen: 3, Noise: 0.02},
		{App: App{"messaging", B, true}, BaseLoad: 0.15, BurstRate: 0.03, BurstMag: 0.30, BurstLen: 2, Noise: 0.03},
		{App: App{"web_browser", B, true}, BaseLoad: 0.22, BurstRate: 0.05, BurstMag: 0.30, BurstLen: 4, Noise: 0.04},
		{App: App{"video_stream", B, true}, BaseLoad: 0.30, PeriodAmp: 0.12, Period: 16, Noise: 0.03},
		{App: App{"photo_editor", B, true}, BaseLoad: 0.32, BurstRate: 0.04, BurstMag: 0.28, BurstLen: 4, Noise: 0.04},
		{App: App{"casual_game", B, true}, BaseLoad: 0.36, PeriodAmp: 0.10, Period: 8, BurstRate: 0.02, BurstMag: 0.25, BurstLen: 3, Noise: 0.05},

		// --- Known malware (6 families) ---
		{App: App{"miner_a", M, true}, BaseLoad: 0.92, Noise: 0.03},
		{App: App{"miner_b", M, true}, BaseLoad: 0.85, PeriodAmp: 0.06, Period: 32, Noise: 0.03},
		{App: App{"ransom_sweep", M, true}, BaseLoad: 0.66, BurstRate: 0.10, BurstMag: 0.30, BurstLen: 10, Noise: 0.04},
		{App: App{"spy_beacon", M, true}, BaseLoad: 0.05, PeriodAmp: 0.55, Period: 40, Noise: 0.02},
		{App: App{"adware_loader", M, true}, BaseLoad: 0.74, BurstRate: 0.08, BurstMag: 0.24, BurstLen: 5, Noise: 0.05},
		{App: App{"botnet_relay", M, true}, BaseLoad: 0.08, BurstRate: 0.12, BurstMag: 0.80, BurstLen: 2, Noise: 0.03},

		// --- Unknown (zero-day bucket: 2 benign apps, 2 malware families) ---
		// Parameters sit in the unpopulated band between the benign group
		// (loads <= 0.42) and the malware group (loads >= 0.60), or combine
		// structure no known app has.
		// Each unknown app combines a load level from the inter-class gap
		// with temporal structure borrowed from the *other* class's known
		// signatures, so the feature evidence is genuinely conflicted —
		// linear members' scores hover near zero and tree thresholds
		// scatter across the gap.
		{App: App{"nav_maps", B, false}, BaseLoad: 0.50, PeriodAmp: 0.26, Period: 36, Noise: 0.04},
		{App: App{"ar_camera", B, false}, BaseLoad: 0.51, PeriodAmp: 0.18, Period: 28, BurstRate: 0.03, BurstMag: 0.25, BurstLen: 3, Noise: 0.05},
		{App: App{"cryptojack_v2", M, false}, BaseLoad: 0.46, PeriodAmp: 0.24, Period: 20, Noise: 0.03},
		{App: App{"wiper_new", M, false}, BaseLoad: 0.49, PeriodAmp: 0.22, Period: 14, BurstRate: 0.04, BurstMag: 0.28, BurstLen: 4, Noise: 0.04},
	}
}

// HPCApps returns the HPC application catalogue.
//
// Benign and malware mixtures deliberately share behaviour components with
// wide per-sample spread, so the two classes overlap in counter space —
// the aleatoric-uncertainty regime the paper diagnoses for the HPC dataset
// of Zhou et al. Unknown apps draw mixtures *inside* the overlap region
// (not outside the training support), matching the paper's observation
// that HPC unknowns land in the class-overlap region rather than
// out-of-distribution territory.
//
// Components order: compute, memory, branch, syscall, crypto (see
// hpc.Components).
func HPCApps() []HPCBehavior {
	B, M := dataset.Benign, dataset.Malware
	return []HPCBehavior{
		// --- Known benign (7 apps) ---
		{App: App{"office_suite", B, true}, Mix: []float64{0.30, 0.25, 0.25, 0.15, 0.05}, Intensity: 1.0, Spread: 0.25},
		{App: App{"media_encode", B, true}, Mix: []float64{0.45, 0.30, 0.10, 0.10, 0.05}, Intensity: 1.4, Spread: 0.24},
		{App: App{"db_server", B, true}, Mix: []float64{0.20, 0.40, 0.15, 0.20, 0.05}, Intensity: 1.2, Spread: 0.25},
		{App: App{"compiler", B, true}, Mix: []float64{0.35, 0.30, 0.25, 0.08, 0.02}, Intensity: 1.3, Spread: 0.24},
		{App: App{"web_server", B, true}, Mix: []float64{0.22, 0.28, 0.20, 0.25, 0.05}, Intensity: 1.0, Spread: 0.27},
		{App: App{"file_sync", B, true}, Mix: []float64{0.15, 0.30, 0.15, 0.30, 0.10}, Intensity: 0.9, Spread: 0.25},
		{App: App{"image_viewer", B, true}, Mix: []float64{0.32, 0.33, 0.20, 0.12, 0.03}, Intensity: 0.8, Spread: 0.25},

		// --- Known malware (7 families) — mixtures shifted toward
		// crypto/syscall activity but still overlapping the benign hull,
		// calibrated for ~0.84 known-data accuracy (the figure the paper
		// quotes for the HPC dataset's RF).
		{App: App{"hpc_miner", M, true}, Mix: []float64{0.36, 0.15, 0.04, 0.05, 0.40}, Intensity: 1.3, Spread: 0.25},
		{App: App{"hpc_ransom", M, true}, Mix: []float64{0.07, 0.28, 0.04, 0.32, 0.29}, Intensity: 1.1, Spread: 0.27},
		{App: App{"hpc_keylog", M, true}, Mix: []float64{0.12, 0.15, 0.16, 0.43, 0.14}, Intensity: 0.9, Spread: 0.27},
		{App: App{"hpc_rootkit", M, true}, Mix: []float64{0.14, 0.22, 0.05, 0.41, 0.18}, Intensity: 1.0, Spread: 0.24},
		{App: App{"hpc_worm", M, true}, Mix: []float64{0.18, 0.17, 0.13, 0.31, 0.21}, Intensity: 1.1, Spread: 0.24},
		{App: App{"hpc_trojan", M, true}, Mix: []float64{0.25, 0.14, 0.16, 0.24, 0.21}, Intensity: 1.0, Spread: 0.27},
		{App: App{"hpc_spyware", M, true}, Mix: []float64{0.13, 0.25, 0.08, 0.33, 0.21}, Intensity: 0.95, Spread: 0.27},

		// --- Unknown (2 benign, 3 malware) — inside the overlap region:
		// mixtures intermediate between the class centres, so unknown
		// windows land where the classes collide rather than outside the
		// training support (the paper's HPC observation).
		{App: App{"hpc_newapp_a", B, false}, Mix: []float64{0.24, 0.27, 0.15, 0.21, 0.13}, Intensity: 1.05, Spread: 0.24},
		{App: App{"hpc_newapp_b", B, false}, Mix: []float64{0.25, 0.25, 0.16, 0.21, 0.13}, Intensity: 1.0, Spread: 0.24},
		{App: App{"hpc_zeroday_x", M, false}, Mix: []float64{0.23, 0.27, 0.14, 0.23, 0.13}, Intensity: 1.1, Spread: 0.24},
		{App: App{"hpc_zeroday_y", M, false}, Mix: []float64{0.24, 0.25, 0.16, 0.22, 0.13}, Intensity: 0.95, Spread: 0.27},
		{App: App{"hpc_zeroday_z", M, false}, Mix: []float64{0.22, 0.27, 0.15, 0.22, 0.14}, Intensity: 1.0, Spread: 0.24},
	}
}

// Known filters a slice of apps to the known subset names.
func Known[T any](apps []T, isKnown func(T) bool) []T {
	var out []T
	for _, a := range apps {
		if isKnown(a) {
			out = append(out, a)
		}
	}
	return out
}

// Allocate distributes total samples across parts as evenly as possible
// (largest-remainder): the first (total mod parts) entries get one extra.
// It lets generators hit the paper's exact Table I sample counts.
func Allocate(total, parts int) ([]int, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("workload: allocate over %d parts", parts)
	}
	if total < 0 {
		return nil, fmt.Errorf("workload: allocate negative total %d", total)
	}
	base := total / parts
	rem := total % parts
	out := make([]int, parts)
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out, nil
}
