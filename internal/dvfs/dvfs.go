// Package dvfs simulates the power-management telemetry substrate of the
// paper's first HMD (Chawla et al. [5], [20]): a mobile SoC whose cpufreq
// governor maps instantaneous CPU utilisation demand to one of a small
// number of discrete voltage/frequency states. An application is observed
// as the time series of DVFS states it induces.
//
// The simulator has three layers:
//
//  1. a demand process per application (workload.DVFSBehavior): base load +
//     sinusoidal component + random bursts + white noise;
//  2. an ondemand-style governor with up/down thresholds and hysteresis
//     that converts demand into a state in [0, Levels);
//  3. a sampling layer that records the state sequence, with occasional
//     misreads modelling sampling noise.
//
// This substitutes for real Android DVFS traces (see DESIGN.md §2): the
// detector consumes only feature vectors extracted from state time series,
// and the catalogue is calibrated so that the latent-space geometry matches
// the paper's observations.
package dvfs

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"trusthmd/internal/workload"
)

// Policy selects the governor's scaling strategy.
type Policy int

const (
	// Ondemand jumps straight to the level covering the demand when the
	// up-threshold trips (Linux ondemand semantics; the default).
	Ondemand Policy = iota
	// Conservative steps one level at a time in both directions (Linux
	// conservative semantics) — smoother ladders, laggier response.
	Conservative
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Ondemand:
		return "ondemand"
	case Conservative:
		return "conservative"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config describes the simulated SoC and trace shape.
type Config struct {
	// Policy is the governor scaling strategy (default Ondemand).
	Policy Policy
	// Levels is the number of DVFS states (frequency ladder rungs).
	Levels int
	// Steps is the trace length in governor ticks.
	Steps int
	// UpThreshold: when demand exceeds the fraction of current capacity,
	// the governor jumps straight to the level matching demand (ondemand
	// semantics).
	UpThreshold float64
	// DownThreshold: when demand falls below this fraction of the *next
	// lower* level's capacity, the governor steps one level down.
	DownThreshold float64
	// MisreadProb is the probability a recorded sample is off by one level
	// (sensor/sampling noise).
	MisreadProb float64
	// Jitter is the scale of per-trace behaviour variation: each trace
	// perturbs the application's nominal parameters (base load, burst
	// magnitude, periodic amplitude) by Gaussian factors of this scale,
	// modelling run-to-run variation — different inputs, background tasks
	// and thermal state. Jitter widens each application's cluster in
	// feature space, which is what lets bootstrap replicates disagree near
	// cluster boundaries.
	Jitter float64
}

// DefaultConfig returns the configuration used by the experiments: an
// 8-state ladder sampled for 256 ticks.
func DefaultConfig() Config {
	return Config{
		Levels:        8,
		Steps:         256,
		UpThreshold:   0.80,
		DownThreshold: 0.40,
		MisreadProb:   0.01,
		Jitter:        1.4,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Levels < 2 {
		return fmt.Errorf("dvfs: need >=2 levels, got %d", c.Levels)
	}
	if c.Steps < 2 {
		return fmt.Errorf("dvfs: need >=2 steps, got %d", c.Steps)
	}
	if c.UpThreshold <= 0 || c.UpThreshold > 1 {
		return fmt.Errorf("dvfs: up threshold %v outside (0,1]", c.UpThreshold)
	}
	if c.DownThreshold < 0 || c.DownThreshold >= c.UpThreshold {
		return fmt.Errorf("dvfs: down threshold %v must be in [0, up=%v)", c.DownThreshold, c.UpThreshold)
	}
	if c.MisreadProb < 0 || c.MisreadProb > 0.5 {
		return fmt.Errorf("dvfs: misread probability %v outside [0,0.5]", c.MisreadProb)
	}
	if c.Jitter < 0 || c.Jitter > 5 {
		return fmt.Errorf("dvfs: jitter %v outside [0,5]", c.Jitter)
	}
	return nil
}

// Simulator generates DVFS state traces for application behaviours.
type Simulator struct {
	cfg Config
}

// NewSimulator validates cfg and returns a simulator.
func NewSimulator(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg}, nil
}

// Config returns the simulator's configuration.
func (s *Simulator) Config() Config { return s.cfg }

// demandProcess tracks the burst state of an application's demand.
type demandProcess struct {
	b         workload.DVFSBehavior
	phase     float64
	burstLeft int
}

// demand returns the utilisation demand in [0,1] at tick t.
func (d *demandProcess) demand(t int, rng *rand.Rand) float64 {
	u := d.b.BaseLoad
	if d.b.PeriodAmp > 0 {
		u += d.b.PeriodAmp * math.Sin(2*math.Pi*float64(t)/float64(d.b.Period)+d.phase)
	}
	if d.burstLeft > 0 {
		u += d.b.BurstMag
		d.burstLeft--
	} else if d.b.BurstRate > 0 && rng.Float64() < d.b.BurstRate {
		// Burst durations are geometric with mean BurstLen.
		d.burstLeft = 1 + rng.Intn(2*d.b.BurstLen-1)
		u += d.b.BurstMag
		d.burstLeft--
	}
	u += rng.NormFloat64() * d.b.Noise
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Trace simulates one DVFS state time series for the behaviour b.
func (s *Simulator) Trace(b workload.DVFSBehavior, rng *rand.Rand) ([]int, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	b = s.jitter(b, rng)
	d := demandProcess{b: b, phase: rng.Float64() * 2 * math.Pi}
	level := 0
	maxLevel := s.cfg.Levels - 1
	out := make([]int, s.cfg.Steps)
	for t := 0; t < s.cfg.Steps; t++ {
		u := d.demand(t, rng)
		capNow := capacity(level, maxLevel)

		switch {
		case u > s.cfg.UpThreshold*capNow:
			if s.cfg.Policy == Conservative {
				if level < maxLevel {
					level++
				}
			} else {
				// Ondemand: jump straight to the level whose capacity
				// covers the demand.
				level = levelFor(u, maxLevel)
			}
		case level > 0 && u < s.cfg.DownThreshold*capacity(level-1, maxLevel):
			level--
		}

		sampled := level
		if s.cfg.MisreadProb > 0 && rng.Float64() < s.cfg.MisreadProb {
			if rng.Intn(2) == 0 && sampled > 0 {
				sampled--
			} else if sampled < maxLevel {
				sampled++
			}
		}
		out[t] = sampled
	}
	return out, nil
}

// jitter perturbs the behaviour's nominal parameters for one trace.
func (s *Simulator) jitter(b workload.DVFSBehavior, rng *rand.Rand) workload.DVFSBehavior {
	if s.cfg.Jitter == 0 {
		return b
	}
	j := s.cfg.Jitter
	clamp01 := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	b.BaseLoad = clamp01(b.BaseLoad + rng.NormFloat64()*0.045*j)
	if b.PeriodAmp > 0 {
		b.PeriodAmp = clamp01(b.PeriodAmp * (1 + rng.NormFloat64()*0.15*j))
	}
	if b.BurstRate > 0 {
		b.BurstMag = clamp01(b.BurstMag * (1 + rng.NormFloat64()*0.20*j))
		b.BurstRate = clamp01(b.BurstRate * (1 + rng.NormFloat64()*0.25*j))
		if b.BurstRate == 0 {
			b.BurstRate = 0.001
		}
	}
	return b
}

// capacity returns the relative throughput of a level: level 0 runs at
// 1/levels of peak, the top level at 1.0.
func capacity(level, maxLevel int) float64 {
	return float64(level+1) / float64(maxLevel+1)
}

// levelFor returns the lowest level whose capacity covers demand u.
func levelFor(u float64, maxLevel int) int {
	l := int(math.Ceil(u*float64(maxLevel+1))) - 1
	if l < 0 {
		l = 0
	}
	if l > maxLevel {
		l = maxLevel
	}
	return l
}

// ErrNoApps reports an empty behaviour list.
var ErrNoApps = errors.New("dvfs: no applications")

// TraceBatch simulates n traces for each behaviour and calls emit with the
// behaviour and its trace. Used by the dataset generator and the online
// detector demo.
func (s *Simulator) TraceBatch(apps []workload.DVFSBehavior, n int, rng *rand.Rand, emit func(workload.DVFSBehavior, []int) error) error {
	if len(apps) == 0 {
		return ErrNoApps
	}
	if n < 1 {
		return fmt.Errorf("dvfs: need n>=1 traces, got %d", n)
	}
	for _, app := range apps {
		for i := 0; i < n; i++ {
			tr, err := s.Trace(app, rng)
			if err != nil {
				return fmt.Errorf("dvfs: %s: %w", app.Name, err)
			}
			if err := emit(app, tr); err != nil {
				return err
			}
		}
	}
	return nil
}
