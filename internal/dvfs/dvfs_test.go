package dvfs

import (
	"math/rand"
	"testing"

	"trusthmd/internal/workload"
	"trusthmd/pkg/dataset"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := map[string]func(c Config) Config{
		"levels":       func(c Config) Config { c.Levels = 1; return c },
		"steps":        func(c Config) Config { c.Steps = 1; return c },
		"up zero":      func(c Config) Config { c.UpThreshold = 0; return c },
		"up high":      func(c Config) Config { c.UpThreshold = 1.2; return c },
		"down neg":     func(c Config) Config { c.DownThreshold = -0.1; return c },
		"down above":   func(c Config) Config { c.DownThreshold = 0.9; return c },
		"misread neg":  func(c Config) Config { c.MisreadProb = -0.1; return c },
		"misread high": func(c Config) Config { c.MisreadProb = 0.6; return c },
	}
	for name, mutate := range cases {
		if err := mutate(DefaultConfig()).Validate(); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, err := NewSimulator(Config{}); err == nil {
		t.Fatal("expected invalid config error")
	}
}

func mustSim(t *testing.T) *Simulator {
	t.Helper()
	s, err := NewSimulator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTraceShapeAndRange(t *testing.T) {
	s := mustSim(t)
	rng := rand.New(rand.NewSource(1))
	for _, app := range workload.DVFSApps() {
		tr, err := s.Trace(app, rng)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if len(tr) != s.Config().Steps {
			t.Fatalf("%s: trace length %d", app.Name, len(tr))
		}
		for i, v := range tr {
			if v < 0 || v >= s.Config().Levels {
				t.Fatalf("%s: state %d at %d out of range", app.Name, v, i)
			}
		}
	}
}

func TestTraceRejectsBadBehaviour(t *testing.T) {
	s := mustSim(t)
	bad := workload.DVFSBehavior{App: workload.App{Name: "x", Label: dataset.Benign}, BaseLoad: 2}
	if _, err := s.Trace(bad, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected behaviour validation error")
	}
}

func TestLoadOrdering(t *testing.T) {
	// A heavy workload must occupy higher DVFS states on average than a
	// light one — the fundamental signal the HMD relies on.
	s := mustSim(t)
	rng := rand.New(rand.NewSource(2))
	mean := func(name string) float64 {
		var app workload.DVFSBehavior
		for _, a := range workload.DVFSApps() {
			if a.Name == name {
				app = a
			}
		}
		var sum, n float64
		for k := 0; k < 10; k++ {
			tr, err := s.Trace(app, rng)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range tr {
				sum += float64(v)
				n++
			}
		}
		return sum / n
	}
	idle := mean("idle_launcher")
	miner := mean("miner_a")
	if miner <= idle+2 {
		t.Fatalf("miner mean state %v must clearly exceed idle %v", miner, idle)
	}
}

func TestBeaconPeriodicity(t *testing.T) {
	// The spy_beacon profile is periodic: its trace must alternate between
	// low and raised states rather than staying flat.
	s := mustSim(t)
	rng := rand.New(rand.NewSource(3))
	var app workload.DVFSBehavior
	for _, a := range workload.DVFSApps() {
		if a.Name == "spy_beacon" {
			app = a
		}
	}
	tr, err := s.Trace(app, rng)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := tr[0], tr[0]
	for _, v := range tr {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 2 {
		t.Fatalf("beacon trace spans [%d,%d], want a visible swing", lo, hi)
	}
}

func TestTraceDeterministicUnderSeed(t *testing.T) {
	s := mustSim(t)
	app := workload.DVFSApps()[0]
	a, err := s.Trace(app, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Trace(app, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same trace")
		}
	}
}

func TestTraceBatch(t *testing.T) {
	s := mustSim(t)
	apps := workload.DVFSApps()[:3]
	count := 0
	err := s.TraceBatch(apps, 4, rand.New(rand.NewSource(4)), func(a workload.DVFSBehavior, tr []int) error {
		count++
		if len(tr) != s.Config().Steps {
			t.Fatal("bad trace length")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 12 {
		t.Fatalf("emitted %d traces, want 12", count)
	}
	if err := s.TraceBatch(nil, 1, rand.New(rand.NewSource(1)), nil); err == nil {
		t.Fatal("expected no-apps error")
	}
	if err := s.TraceBatch(apps, 0, rand.New(rand.NewSource(1)), nil); err == nil {
		t.Fatal("expected n error")
	}
}

func TestLevelForAndCapacity(t *testing.T) {
	if levelFor(0, 7) != 0 {
		t.Fatal("levelFor(0)")
	}
	if levelFor(1, 7) != 7 {
		t.Fatal("levelFor(1)")
	}
	if levelFor(0.5, 7) != 3 {
		t.Fatalf("levelFor(0.5)=%d", levelFor(0.5, 7))
	}
	if capacity(7, 7) != 1 {
		t.Fatal("top capacity must be 1")
	}
	if capacity(0, 7) != 0.125 {
		t.Fatalf("bottom capacity %v", capacity(0, 7))
	}
}

func TestPolicyString(t *testing.T) {
	if Ondemand.String() != "ondemand" || Conservative.String() != "conservative" || Policy(9).String() == "" {
		t.Fatal("policy strings")
	}
}

func TestConservativeGovernorRampsSlower(t *testing.T) {
	// A step to full demand: ondemand reaches the top level immediately,
	// conservative climbs one rung per tick.
	mk := func(p Policy) *Simulator {
		cfg := DefaultConfig()
		cfg.Policy = p
		cfg.MisreadProb = 0
		cfg.Jitter = 0
		s, err := NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	heavy := workload.DVFSBehavior{
		App:      workload.App{Name: "step", Label: dataset.Malware, Known: true},
		BaseLoad: 0.95,
	}
	rng := rand.New(rand.NewSource(1))
	od, err := mk(Ondemand).Trace(heavy, rng)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := mk(Conservative).Trace(heavy, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if od[0] < 6 {
		t.Fatalf("ondemand first tick state %d, want immediate jump", od[0])
	}
	if cons[0] > 1 {
		t.Fatalf("conservative first tick state %d, want single-step ramp", cons[0])
	}
	// Conservative still reaches the top eventually.
	top := 0
	for _, v := range cons {
		if v > top {
			top = v
		}
	}
	if top < 6 {
		t.Fatalf("conservative never ramped up: max state %d", top)
	}
}
