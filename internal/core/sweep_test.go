package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestThresholds(t *testing.T) {
	ts, err := Thresholds(0, 0.75, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 16 {
		t.Fatalf("len %d, want 16", len(ts))
	}
	if ts[0] != 0 || math.Abs(ts[15]-0.75) > 1e-9 {
		t.Fatalf("endpoints %v %v", ts[0], ts[15])
	}
	if _, err := Thresholds(0, 1, 0); err == nil {
		t.Fatal("expected step error")
	}
	if _, err := Thresholds(1, 0, 0.1); err == nil {
		t.Fatal("expected range error")
	}
}

func TestRejectionCurveMonotone(t *testing.T) {
	entropies := []float64{0.1, 0.2, 0.3, 0.5, 0.8, 0.9}
	ts, _ := Thresholds(0, 1, 0.1)
	curve, err := RejectionCurve(entropies, ts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].RejectedPct > curve[i-1].RejectedPct+1e-9 {
			t.Fatalf("rejection curve must be non-increasing in threshold: %v", curve)
		}
	}
	if curve[0].RejectedPct != 100 {
		t.Fatalf("at threshold 0, %v%% rejected", curve[0].RejectedPct)
	}
	if curve[len(curve)-1].RejectedPct != 0 {
		t.Fatalf("at threshold 1, %v%% rejected", curve[len(curve)-1].RejectedPct)
	}
	if _, err := RejectionCurve(nil, ts); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestF1Curve(t *testing.T) {
	// Wrong predictions carry high entropy: rejection should raise F1.
	yTrue := []int{1, 1, 1, 0, 0, 0}
	yPred := []int{1, 1, 0, 0, 0, 1}
	entropies := []float64{0.1, 0.1, 0.9, 0.1, 0.1, 0.9}
	ts := []float64{0.05, 0.5, 1.0}
	curve, err := F1Curve(yTrue, yPred, entropies, ts)
	if err != nil {
		t.Fatal(err)
	}
	// At threshold 0.5, errors rejected: perfect F1.
	if curve[1].F1 != 1 {
		t.Fatalf("F1 at 0.5 = %v, want 1", curve[1].F1)
	}
	if math.Abs(curve[1].RejectedPct-100.0/3) > 1e-9 {
		t.Fatalf("rejected %v", curve[1].RejectedPct)
	}
	// At threshold 1.0, nothing rejected: F1 = 2/3 (2 errors among 6).
	if curve[2].RejectedPct != 0 {
		t.Fatalf("rejected at 1.0 = %v", curve[2].RejectedPct)
	}
	if curve[2].F1 >= curve[1].F1 {
		t.Fatalf("rejection should raise F1: %v vs %v", curve[2].F1, curve[1].F1)
	}
}

func TestF1CurveErrors(t *testing.T) {
	if _, err := F1Curve(nil, nil, nil, nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := F1Curve([]int{1}, []int{1}, []float64{0.1, 0.2}, nil); err == nil {
		t.Fatal("expected length error")
	}
}

func TestAtOperatingPoint(t *testing.T) {
	known := []float64{0.1, 0.2, 0.3}
	unknown := []float64{0.8, 0.9, 0.2}
	op, err := At(0.4, known, unknown)
	if err != nil {
		t.Fatal(err)
	}
	if op.KnownRejectedPct != 0 {
		t.Fatalf("known %v", op.KnownRejectedPct)
	}
	if math.Abs(op.UnknownRejectedPct-200.0/3) > 1e-9 {
		t.Fatalf("unknown %v", op.UnknownRejectedPct)
	}
	if _, err := At(0.4, nil, unknown); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := At(0.4, known, nil); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestBestSeparation(t *testing.T) {
	known := []float64{0.05, 0.1, 0.15}
	unknown := []float64{0.7, 0.8, 0.9}
	ts, _ := Thresholds(0, 1, 0.05)
	op, err := BestSeparation(known, unknown, ts)
	if err != nil {
		t.Fatal(err)
	}
	if op.KnownRejectedPct != 0 || op.UnknownRejectedPct != 100 {
		t.Fatalf("best separation %+v", op)
	}
	if op.Threshold < 0.15 || op.Threshold >= 0.7 {
		t.Fatalf("threshold %v should sit between the populations", op.Threshold)
	}
	if _, err := BestSeparation(known, unknown, nil); err == nil {
		t.Fatal("expected no-thresholds error")
	}
}

// Property: rejection curves are monotonically non-increasing and bounded
// in [0,100] for any entropy population.
func TestRejectionCurveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		entropies := make([]float64, n)
		for i := range entropies {
			entropies[i] = rng.Float64()
		}
		ts, err := Thresholds(0, 1, 0.05)
		if err != nil {
			return false
		}
		curve, err := RejectionCurve(entropies, ts)
		if err != nil {
			return false
		}
		for i, p := range curve {
			if p.RejectedPct < 0 || p.RejectedPct > 100 {
				return false
			}
			if i > 0 && p.RejectedPct > curve[i-1].RejectedPct+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
