package core

import (
	"errors"
	"fmt"

	"trusthmd/internal/metrics"
)

// SweepPoint is one threshold sample of a rejection curve (Figs. 7a, 9b):
// the percentage of inputs whose predictive entropy exceeds the threshold.
type SweepPoint struct {
	Threshold   float64
	RejectedPct float64
}

// F1Point is one threshold sample of an F1 curve (Fig. 7b): the F1 score
// over accepted predictions plus the fraction rejected at that threshold.
type F1Point struct {
	Threshold   float64
	F1          float64
	Precision   float64
	Recall      float64
	RejectedPct float64
}

// Thresholds returns an inclusive [lo, hi] grid with the given step, as
// used on the paper's x-axes (e.g. 0.00–0.75 step 0.05).
func Thresholds(lo, hi, step float64) ([]float64, error) {
	if step <= 0 {
		return nil, fmt.Errorf("core: non-positive step %v", step)
	}
	if hi < lo {
		return nil, fmt.Errorf("core: empty range [%v,%v]", lo, hi)
	}
	var out []float64
	for i := 0; ; i++ {
		t := lo + float64(i)*step
		if t > hi+step/1e6 {
			break
		}
		out = append(out, t)
	}
	return out, nil
}

// RejectionCurve evaluates the rejected percentage at every threshold.
func RejectionCurve(entropies []float64, thresholds []float64) ([]SweepPoint, error) {
	if len(entropies) == 0 {
		return nil, errors.New("core: no entropies")
	}
	out := make([]SweepPoint, len(thresholds))
	for i, thr := range thresholds {
		frac, err := Rejector{Threshold: thr}.RejectedFraction(entropies)
		if err != nil {
			return nil, err
		}
		out[i] = SweepPoint{Threshold: thr, RejectedPct: 100 * frac}
	}
	return out, nil
}

// F1Curve evaluates rejection-aware F1 at every threshold: predictions with
// entropy above the threshold are rejected and the report is computed on
// the rest (Fig. 7b). Thresholds where everything is rejected yield F1 = 0.
func F1Curve(yTrue, yPred []int, entropies []float64, thresholds []float64) ([]F1Point, error) {
	if len(yTrue) == 0 {
		return nil, errors.New("core: no samples")
	}
	if len(yTrue) != len(yPred) || len(yTrue) != len(entropies) {
		return nil, fmt.Errorf("core: mismatched lengths %d/%d/%d", len(yTrue), len(yPred), len(entropies))
	}
	out := make([]F1Point, len(thresholds))
	accepted := make([]bool, len(yTrue))
	for i, thr := range thresholds {
		r := Rejector{Threshold: thr}
		for j, h := range entropies {
			accepted[j] = r.Accept(h)
		}
		rep, rejFrac, err := metrics.ScoreAccepted(yTrue, yPred, accepted)
		if err != nil {
			return nil, err
		}
		out[i] = F1Point{
			Threshold:   thr,
			F1:          rep.F1,
			Precision:   rep.Precision,
			Recall:      rep.Recall,
			RejectedPct: 100 * rejFrac,
		}
	}
	return out, nil
}

// OperatingPoint summarises a single threshold choice on known and unknown
// populations — the paper's headline statement is the DVFS RF operating
// point at threshold 0.40: ~95 % of unknown workloads rejected, < 5 % of
// known ones.
type OperatingPoint struct {
	Threshold          float64
	KnownRejectedPct   float64
	UnknownRejectedPct float64
}

// At evaluates the operating point of a threshold against known-data and
// unknown-data entropy populations.
func At(threshold float64, knownEntropies, unknownEntropies []float64) (OperatingPoint, error) {
	r := Rejector{Threshold: threshold}
	kf, err := r.RejectedFraction(knownEntropies)
	if err != nil {
		return OperatingPoint{}, fmt.Errorf("core: known: %w", err)
	}
	uf, err := r.RejectedFraction(unknownEntropies)
	if err != nil {
		return OperatingPoint{}, fmt.Errorf("core: unknown: %w", err)
	}
	return OperatingPoint{
		Threshold:          threshold,
		KnownRejectedPct:   100 * kf,
		UnknownRejectedPct: 100 * uf,
	}, nil
}

// BestSeparation searches the threshold grid for the operating point that
// maximises (unknown rejected − known rejected), the natural figure of
// merit for zero-day screening.
func BestSeparation(knownEntropies, unknownEntropies, thresholds []float64) (OperatingPoint, error) {
	if len(thresholds) == 0 {
		return OperatingPoint{}, errors.New("core: no thresholds")
	}
	var best OperatingPoint
	bestGap := -1.0
	for _, thr := range thresholds {
		op, err := At(thr, knownEntropies, unknownEntropies)
		if err != nil {
			return OperatingPoint{}, err
		}
		if gap := op.UnknownRejectedPct - op.KnownRejectedPct; gap > bestGap {
			bestGap = gap
			best = op
		}
	}
	return best, nil
}
