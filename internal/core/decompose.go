package core

import (
	"errors"
	"fmt"

	"trusthmd/internal/stats"
)

// Decomposition separates a prediction's total uncertainty into its two
// sources (the paper's §VI names this separation as future work; the
// estimator here is the standard mutual-information decomposition used
// with ensembles, cf. Depeweg et al. 2018, Malinin & Gales 2018):
//
//	Total     = H( mean_m p_m )        — entropy of the averaged posterior
//	Aleatoric = mean_m H( p_m )        — expected member entropy (data noise)
//	Epistemic = Total − Aleatoric      — member disagreement (model uncertainty)
//
// Epistemic is the mutual information between the prediction and the model
// choice; it is non-negative by concavity of entropy. All values are in
// bits.
type Decomposition struct {
	Total     float64
	Aleatoric float64
	Epistemic float64
}

// ErrNoMembers reports an empty member-posterior set.
var ErrNoMembers = errors.New("core: no member posteriors")

// Decompose computes the decomposition from per-member posterior
// distributions (one distribution per ensemble member, all of equal
// length). Members that emit hard one-hot votes contribute zero aleatoric
// mass, in which case Epistemic equals the vote entropy.
func Decompose(memberProbs [][]float64) (Decomposition, error) {
	if len(memberProbs) == 0 {
		return Decomposition{}, ErrNoMembers
	}
	k := len(memberProbs[0])
	if k < 2 {
		return Decomposition{}, fmt.Errorf("core: member posterior has %d classes, want >=2", k)
	}
	mean := make([]float64, k)
	var aleatoric float64
	for m, p := range memberProbs {
		if len(p) != k {
			return Decomposition{}, fmt.Errorf("core: member %d posterior has %d classes, want %d", m, len(p), k)
		}
		h, err := stats.Entropy(p)
		if err != nil {
			return Decomposition{}, fmt.Errorf("core: member %d: %w", m, err)
		}
		aleatoric += h
		for j, v := range p {
			mean[j] += v
		}
	}
	inv := 1 / float64(len(memberProbs))
	aleatoric *= inv
	for j := range mean {
		mean[j] *= inv
	}
	total, err := stats.Entropy(mean)
	if err != nil {
		return Decomposition{}, fmt.Errorf("core: averaged posterior: %w", err)
	}
	epistemic := total - aleatoric
	if epistemic < 0 { // numerical round-off; mathematically >= 0
		epistemic = 0
	}
	return Decomposition{Total: total, Aleatoric: aleatoric, Epistemic: epistemic}, nil
}

// DominantSource names the larger component of the decomposition:
// "epistemic" for out-of-distribution-style uncertainty (actionable by
// collecting data and retraining), "aleatoric" for class overlap
// (actionable only by changing sensors/features), or "none" when the
// prediction is confident (total below the given floor).
func (d Decomposition) DominantSource(confidentBelow float64) string {
	if d.Total < confidentBelow {
		return "none"
	}
	if d.Epistemic >= d.Aleatoric {
		return "epistemic"
	}
	return "aleatoric"
}
