package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecomposeConfidentAgreement(t *testing.T) {
	// All members certain and agreeing: no uncertainty of either kind.
	probs := [][]float64{{1, 0}, {1, 0}, {1, 0}}
	d, err := Decompose(probs)
	if err != nil {
		t.Fatal(err)
	}
	if d.Total != 0 || d.Aleatoric != 0 || d.Epistemic != 0 {
		t.Fatalf("decomposition %+v, want zeros", d)
	}
	if d.DominantSource(0.1) != "none" {
		t.Fatal("confident prediction should have no dominant source")
	}
}

func TestDecomposePureEpistemic(t *testing.T) {
	// Members certain but split 50/50: pure disagreement.
	probs := [][]float64{{1, 0}, {0, 1}, {1, 0}, {0, 1}}
	d, err := Decompose(probs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Total-1) > 1e-12 {
		t.Fatalf("total %v, want 1", d.Total)
	}
	if d.Aleatoric != 0 {
		t.Fatalf("aleatoric %v, want 0", d.Aleatoric)
	}
	if math.Abs(d.Epistemic-1) > 1e-12 {
		t.Fatalf("epistemic %v, want 1", d.Epistemic)
	}
	if d.DominantSource(0.1) != "epistemic" {
		t.Fatal("dominant source should be epistemic")
	}
}

func TestDecomposePureAleatoric(t *testing.T) {
	// Members agree that the input is ambiguous: pure data uncertainty.
	probs := [][]float64{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}}
	d, err := Decompose(probs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Total-1) > 1e-12 || math.Abs(d.Aleatoric-1) > 1e-12 {
		t.Fatalf("decomposition %+v", d)
	}
	if d.Epistemic > 1e-12 {
		t.Fatalf("epistemic %v, want 0", d.Epistemic)
	}
	if d.DominantSource(0.1) != "aleatoric" {
		t.Fatal("dominant source should be aleatoric")
	}
}

func TestDecomposeHardVotesMatchVoteEntropy(t *testing.T) {
	// One-hot members: epistemic component equals the vote entropy.
	votes := []int{0, 1, 1, 1, 0}
	probs := make([][]float64, len(votes))
	for i, v := range votes {
		p := make([]float64, 2)
		p[v] = 1
		probs[i] = p
	}
	d, err := Decompose(probs)
	if err != nil {
		t.Fatal(err)
	}
	var e Estimator
	h, err := e.VoteEntropy(votes)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Epistemic-h) > 1e-12 {
		t.Fatalf("epistemic %v vs vote entropy %v", d.Epistemic, h)
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := Decompose([][]float64{{1}}); err == nil {
		t.Fatal("expected class-count error")
	}
	if _, err := Decompose([][]float64{{0.5, 0.5}, {0.5}}); err == nil {
		t.Fatal("expected ragged error")
	}
	if _, err := Decompose([][]float64{{-1, 2}}); err == nil {
		t.Fatal("expected invalid probability error")
	}
}

// Properties: Total = Aleatoric + Epistemic, all components in [0, log2 k],
// Epistemic >= 0 (Jensen).
func TestDecomposeIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(20)
		k := 2 + rng.Intn(3)
		probs := make([][]float64, m)
		for i := range probs {
			p := make([]float64, k)
			var sum float64
			for j := range p {
				p[j] = rng.Float64() + 1e-9
				sum += p[j]
			}
			for j := range p {
				p[j] /= sum
			}
			probs[i] = p
		}
		d, err := Decompose(probs)
		if err != nil {
			return false
		}
		maxH := math.Log2(float64(k))
		if d.Total < 0 || d.Total > maxH+1e-9 {
			return false
		}
		if d.Aleatoric < 0 || d.Aleatoric > maxH+1e-9 {
			return false
		}
		if d.Epistemic < 0 {
			return false
		}
		return math.Abs(d.Total-(d.Aleatoric+d.Epistemic)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
