package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVoteEntropyUnanimous(t *testing.T) {
	var e Estimator
	h, err := e.VoteEntropy([]int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Fatalf("unanimous entropy %v, want 0", h)
	}
}

func TestVoteEntropySplit(t *testing.T) {
	var e Estimator
	h, err := e.VoteEntropy([]int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-1) > 1e-12 {
		t.Fatalf("50/50 entropy %v, want 1 bit", h)
	}
}

func TestVoteEntropyErrors(t *testing.T) {
	var e Estimator
	if _, err := e.VoteEntropy(nil); err == nil {
		t.Fatal("expected no-votes error")
	}
	if _, err := e.VoteEntropy([]int{-1}); err == nil {
		t.Fatal("expected negative vote error")
	}
}

func TestVoteDistribution(t *testing.T) {
	var e Estimator
	p, err := e.VoteDistribution([]int{0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-0.25) > 1e-12 || math.Abs(p[1]-0.75) > 1e-12 {
		t.Fatalf("distribution %v", p)
	}
	// Classes floor: a single class of votes still yields a length-2 dist.
	p, err = e.VoteDistribution([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 {
		t.Fatalf("len %d, want 2", len(p))
	}
	// Explicit class count extends the support.
	e3 := Estimator{Classes: 3}
	p, err = e3.VoteDistribution([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 {
		t.Fatalf("len %d, want 3", len(p))
	}
}

func TestAgreement(t *testing.T) {
	var e Estimator
	a, err := e.Agreement([]int{1, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.75) > 1e-12 {
		t.Fatalf("agreement %v", a)
	}
	if _, err := e.Agreement(nil); err == nil {
		t.Fatal("expected error")
	}
}

// Property: entropy is maximal iff votes are evenly split, and agreement
// and entropy are inversely ordered.
func TestEntropyAgreementOrderingProperty(t *testing.T) {
	var e Estimator
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(30)
		votesA := make([]int, m)
		votesB := make([]int, m)
		for i := range votesA {
			votesA[i] = rng.Intn(2)
			votesB[i] = rng.Intn(2)
		}
		hA, err1 := e.VoteEntropy(votesA)
		hB, err2 := e.VoteEntropy(votesB)
		aA, err3 := e.Agreement(votesA)
		aB, err4 := e.Agreement(votesB)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		if hA < 0 || hA > 1+1e-12 {
			return false
		}
		// Higher agreement implies lower-or-equal entropy for binary votes.
		if aA > aB && hA > hB+1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPosterior(t *testing.T) {
	p := Posterior{0.25, 0.75}
	h, err := p.Entropy()
	if err != nil {
		t.Fatal(err)
	}
	want := -(0.25*math.Log2(0.25) + 0.75*math.Log2(0.75))
	if math.Abs(h-want) > 1e-12 {
		t.Fatalf("entropy %v, want %v", h, want)
	}
	cls, prob := p.MaxClass()
	if cls != 1 || prob != 0.75 {
		t.Fatalf("maxclass %d %v", cls, prob)
	}
}

func TestDecisionString(t *testing.T) {
	if DecideBenign.String() != "benign" || DecideMalware.String() != "malware" ||
		DecideReject.String() != "reject" || Decision(9).String() == "" {
		t.Fatal("decision strings")
	}
}

func TestRejectorDecide(t *testing.T) {
	r := Rejector{Threshold: 0.4}
	cases := []struct {
		pred    int
		entropy float64
		want    Decision
	}{
		{0, 0.1, DecideBenign},
		{1, 0.1, DecideMalware},
		{0, 0.4, DecideBenign}, // boundary inclusive
		{1, 0.41, DecideReject},
		{0, 1.0, DecideReject},
	}
	for _, c := range cases {
		got, err := r.Decide(c.pred, c.entropy)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("Decide(%d,%v)=%v, want %v", c.pred, c.entropy, got, c.want)
		}
	}
}

func TestRejectorDecideErrors(t *testing.T) {
	r := Rejector{Threshold: 0.4}
	if _, err := r.Decide(0, math.NaN()); err == nil {
		t.Fatal("expected NaN error")
	}
	if _, err := r.Decide(0, -0.1); err == nil {
		t.Fatal("expected negative entropy error")
	}
	if d, err := r.Decide(7, 0.1); err == nil || d != DecideReject {
		t.Fatal("expected bad-class error with reject fallback")
	}
}

func TestRejectedFraction(t *testing.T) {
	r := Rejector{Threshold: 0.5}
	frac, err := r.RejectedFraction([]float64{0.1, 0.6, 0.9, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if frac != 0.5 {
		t.Fatalf("frac %v", frac)
	}
	if _, err := r.RejectedFraction(nil); err == nil {
		t.Fatal("expected error")
	}
}
