// Package core implements the paper's primary contribution: online
// predictive-uncertainty estimation for hardware-based malware detectors.
//
// An ensemble of base classifiers (package ensemble) emits M hard votes for
// every input. The Estimator turns those votes into a frequency
// distribution and computes its Shannon entropy (Eq. 4 of the paper) — the
// predictive uncertainty. A Rejector compares the entropy against a
// threshold and converts the raw prediction into a trusted decision:
// Benign, Malware, or Rejected (the input is routed to a security analyst).
// Sweep produces the rejection-rate and F1 curves of the paper's Figs. 7
// and 9.
//
// Entropy is measured in bits (log base 2), so binary vote entropy lies in
// [0, 1]; the paper's threshold axes (0–0.85) use the same scale.
package core

import (
	"errors"
	"fmt"
	"math"

	"trusthmd/internal/stats"
)

// Estimator computes predictive uncertainty from ensemble votes.
// The zero value is ready to use and measures entropy in bits.
type Estimator struct {
	// Classes is the number of classes in the vote distribution; 0 means
	// infer from the maximum vote seen (at least 2).
	Classes int
}

// ErrNoVotes reports an empty vote slice.
var ErrNoVotes = errors.New("core: no votes")

// VoteEntropy returns the entropy, in bits, of the frequency distribution
// of the ensemble's hard votes (Eq. 4 applied to the vote histogram of
// Fig. 2). Votes must be non-negative class indices.
func (e Estimator) VoteEntropy(votes []int) (float64, error) {
	counts, err := e.voteCounts(votes)
	if err != nil {
		return 0, err
	}
	return stats.CountEntropy(counts)
}

// VoteDistribution returns the normalised vote frequency distribution —
// the approximate predictive posterior of Eq. 3 under hard votes.
func (e Estimator) VoteDistribution(votes []int) ([]float64, error) {
	counts, err := e.voteCounts(votes)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(counts))
	inv := 1 / float64(len(votes))
	for i, c := range counts {
		out[i] = float64(c) * inv
	}
	return out, nil
}

func (e Estimator) voteCounts(votes []int) ([]int, error) {
	if len(votes) == 0 {
		return nil, ErrNoVotes
	}
	k := e.Classes
	if k < 2 {
		k = 2
	}
	for _, v := range votes {
		if v < 0 {
			return nil, fmt.Errorf("core: negative vote %d", v)
		}
		if v+1 > k {
			k = v + 1
		}
	}
	counts := make([]int, k)
	for _, v := range votes {
		counts[v]++
	}
	return counts, nil
}

// VoteSummary is everything the trusted HMD derives from one set of member
// votes: the plurality prediction, the vote-entropy uncertainty and the
// normalised vote distribution. It is produced by Estimator.Summarize in a
// single pass over the votes, where the per-quantity methods (VoteEntropy,
// VoteDistribution, a caller-side argmax) would each walk them again.
type VoteSummary struct {
	// Prediction is the plurality class; ties resolve to the lower index.
	Prediction int
	// Entropy is the Shannon entropy of the vote distribution in bits.
	Entropy float64
	// Dist is the normalised vote frequency distribution (sums to 1).
	Dist []float64
}

// Summarize computes prediction, entropy and vote distribution from one
// walk over the member votes.
func (e Estimator) Summarize(votes []int) (VoteSummary, error) {
	counts, err := e.voteCounts(votes)
	if err != nil {
		return VoteSummary{}, err
	}
	return e.SummarizeCounts(counts, len(votes), make([]float64, len(counts)))
}

// SummarizeCounts is the destination-passing core of Summarize: it builds
// the summary from an already-accumulated vote histogram over nVotes total
// votes, writing the normalised distribution into dist (len(counts)). The
// zero-allocation assessment path accumulates counts member-by-member and
// summarises them here; the numbers are bit-identical to Summarize over
// the equivalent vote slice.
func (e Estimator) SummarizeCounts(counts []int, nVotes int, dist []float64) (VoteSummary, error) {
	if nVotes == 0 {
		return VoteSummary{}, ErrNoVotes
	}
	if len(dist) != len(counts) {
		return VoteSummary{}, fmt.Errorf("core: dist len %d for %d classes", len(dist), len(counts))
	}
	h, err := stats.CountEntropy(counts)
	if err != nil {
		return VoteSummary{}, err
	}
	inv := 1 / float64(nVotes)
	best := 0
	for lab, c := range counts {
		dist[lab] = float64(c) * inv
		if c > counts[best] {
			best = lab
		}
	}
	return VoteSummary{Prediction: best, Entropy: h, Dist: dist}, nil
}

// Agreement returns the fraction of votes cast for the plurality class —
// a linear alternative to entropy (1 = unanimous).
func (e Estimator) Agreement(votes []int) (float64, error) {
	counts, err := e.voteCounts(votes)
	if err != nil {
		return 0, err
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	return float64(best) / float64(len(votes)), nil
}

// Posterior is an averaged predictive distribution P(y|x, D) produced by
// Eq. 3 (mean of member probability outputs).
type Posterior []float64

// Entropy returns the Shannon entropy of the posterior in bits (Eq. 4).
func (p Posterior) Entropy() (float64, error) {
	return stats.Entropy(p)
}

// MaxClass returns the argmax class of the posterior and its probability.
func (p Posterior) MaxClass() (class int, prob float64) {
	for i, v := range p {
		if v > prob {
			class, prob = i, v
		}
	}
	return class, prob
}

// Decision is the output of a trusted HMD (Fig. 1, bottom path).
type Decision int

const (
	// DecideBenign accepts the prediction as benign.
	DecideBenign Decision = iota
	// DecideMalware accepts the prediction as malware.
	DecideMalware
	// DecideReject refuses to classify: the prediction's uncertainty
	// exceeded the threshold and the input is handed to a specialist.
	DecideReject
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case DecideBenign:
		return "benign"
	case DecideMalware:
		return "malware"
	case DecideReject:
		return "reject"
	default:
		return fmt.Sprintf("decision(%d)", int(d))
	}
}

// Rejector converts (prediction, entropy) pairs into trusted decisions.
type Rejector struct {
	// Threshold is the entropy (bits) above which predictions are rejected.
	Threshold float64
}

// Decide maps a raw binary prediction and its predictive entropy to a
// trusted decision. Predictions with entropy strictly above the threshold
// are rejected.
func (r Rejector) Decide(prediction int, entropy float64) (Decision, error) {
	if math.IsNaN(entropy) || entropy < 0 {
		return DecideReject, fmt.Errorf("core: invalid entropy %v", entropy)
	}
	if entropy > r.Threshold {
		return DecideReject, nil
	}
	switch prediction {
	case 0:
		return DecideBenign, nil
	case 1:
		return DecideMalware, nil
	default:
		return DecideReject, fmt.Errorf("core: prediction %d is not a binary class", prediction)
	}
}

// Accept reports whether an entropy value passes the threshold.
func (r Rejector) Accept(entropy float64) bool { return entropy <= r.Threshold }

// RejectedFraction returns the fraction of entropies rejected at the
// rejector's threshold.
func (r Rejector) RejectedFraction(entropies []float64) (float64, error) {
	if len(entropies) == 0 {
		return 0, errors.New("core: no entropies")
	}
	rejected := 0
	for _, h := range entropies {
		if !r.Accept(h) {
			rejected++
		}
	}
	return float64(rejected) / float64(len(entropies)), nil
}
