// Package integration holds cross-module, end-to-end tests: full pipelines
// from telemetry simulation through feature extraction, training,
// uncertainty estimation, rejection and drift monitoring. Unit behaviour is
// covered in each package; these tests assert the composed system.
package integration

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"trusthmd/internal/core"
	"trusthmd/internal/dvfs"
	"trusthmd/internal/ensemble"
	"trusthmd/internal/feature"
	"trusthmd/internal/gen"
	"trusthmd/internal/metrics"
	"trusthmd/internal/ml/forest"
	"trusthmd/internal/ml/tree"
	"trusthmd/internal/workload"
	"trusthmd/pkg/dataset"
	"trusthmd/pkg/detector"
)

// TestEndToEndZeroDayScreening runs the paper's core scenario on a reduced
// dataset: train on known apps, verify unknown apps are rejected at a far
// higher rate than known test data, and that the accepted known predictions
// are accurate.
func TestEndToEndZeroDayScreening(t *testing.T) {
	splits, err := gen.DVFSWithSizes(1, gen.Sizes{Train: 700, Test: 280, Unknown: 120})
	if err != nil {
		t.Fatal(err)
	}
	d, err := detector.New(splits.Train,
		detector.WithModel("rf"), detector.WithEnsembleSize(25), detector.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	rKnown, err := d.AssessDataset(splits.Test)
	if err != nil {
		t.Fatal(err)
	}
	rUnknown, err := d.AssessDataset(splits.Unknown)
	if err != nil {
		t.Fatal(err)
	}
	preds := detector.Predictions(rKnown)
	hKnown := detector.Entropies(rKnown)
	hUnknown := detector.Entropies(rUnknown)
	op, err := core.At(0.40, hKnown, hUnknown)
	if err != nil {
		t.Fatal(err)
	}
	if op.UnknownRejectedPct < 55 {
		t.Fatalf("unknown rejection %.1f%% too low", op.UnknownRejectedPct)
	}
	if op.KnownRejectedPct > 20 {
		t.Fatalf("known rejection %.1f%% too high", op.KnownRejectedPct)
	}
	// Accepted known predictions must be near-perfect.
	accepted := make([]bool, len(hKnown))
	r := core.Rejector{Threshold: 0.40}
	for i, h := range hKnown {
		accepted[i] = r.Accept(h)
	}
	rep, _, err := metrics.ScoreAccepted(splits.Test.Y(), preds, accepted)
	if err != nil {
		t.Fatal(err)
	}
	if rep.F1 < 0.97 {
		t.Fatalf("accepted-known F1 %.3f too low", rep.F1)
	}
}

// TestCSVRoundTripPreservesPipelineBehaviour trains on a dataset, writes it
// to CSV, reads it back and retrains: predictions must be identical.
func TestCSVRoundTripPreservesPipelineBehaviour(t *testing.T) {
	splits, err := gen.DVFSWithSizes(2, gen.Sizes{Train: 280, Test: 70, Unknown: 40})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := splits.Train.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rfOpts := []detector.Option{
		detector.WithModel("rf"), detector.WithEnsembleSize(9), detector.WithSeed(9)}
	pa, err := detector.New(splits.Train, rfOpts...)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := detector.New(back, rfOpts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < splits.Test.Len(); i++ {
		x := splits.Test.At(i).Features
		aa, err := pa.Assess(x)
		if err != nil {
			t.Fatal(err)
		}
		ab, err := pb.Assess(x)
		if err != nil {
			t.Fatal(err)
		}
		if aa.Prediction != ab.Prediction || math.Abs(aa.Entropy-ab.Entropy) > 1e-12 {
			t.Fatalf("sample %d: round-tripped training diverged", i)
		}
	}
}

// TestOnlineDetectorWithDriftMonitor composes the streaming detector with
// the drift monitor over a simulated compromise and asserts the alarm fires
// in the compromise phase, not the benign phase.
func TestOnlineDetectorWithDriftMonitor(t *testing.T) {
	splits, err := gen.DVFSWithSizes(3, gen.Sizes{Train: 700, Test: 280, Unknown: 40})
	if err != nil {
		t.Fatal(err)
	}
	d, err := detector.New(splits.Train,
		detector.WithModel("rf"), detector.WithEnsembleSize(15),
		detector.WithSeed(3), detector.WithThreshold(0.40))
	if err != nil {
		t.Fatal(err)
	}

	sim, err := dvfs.NewSimulator(dvfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	online, err := detector.NewOnline(d, detector.StreamConfig{
		Levels: sim.Config().Levels,
		Window: sim.Config().Steps,
	})
	if err != nil {
		t.Fatal(err)
	}

	apps := map[string]workload.DVFSBehavior{}
	for _, a := range workload.DVFSApps() {
		apps[a.Name] = a
	}
	rng := rand.New(rand.NewSource(3))
	benignMix := []string{"idle_launcher", "video_stream", "music_player", "ebook_reader"}

	var monitor *detector.DriftMonitor
	stream := func(names []string, windows int) (alarms int) {
		for w := 0; w < windows; w++ {
			app := apps[names[rng.Intn(len(names))]]
			trace, err := sim.Trace(app, rng)
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range trace {
				res, ok, err := online.Push(st)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					continue
				}
				if monitor == nil {
					continue // baseline collection phase
				}
				status, err := monitor.Observe(res.Entropy)
				if err != nil {
					t.Fatal(err)
				}
				if status.Alarm {
					alarms++
				}
			}
		}
		return alarms
	}

	// Baseline: profile the deployment's own normal traffic through the
	// detector, as an operator would.
	stream(benignMix, 40)
	var baseline []float64
	for i := 0; i < splits.Test.Len(); i++ {
		s := splits.Test.At(i)
		if s.Label != 0 {
			continue
		}
		r, err := d.Assess(s.Features)
		if err != nil {
			t.Fatal(err)
		}
		baseline = append(baseline, r.Entropy)
	}
	monitor, err = detector.NewDriftMonitor(baseline, detector.DriftConfig{Threshold: 0.40, Window: 12, Alpha: 0.001})
	if err != nil {
		t.Fatal(err)
	}

	benignAlarms := stream(benignMix, 25)
	compromiseAlarms := stream([]string{"cryptojack_v2", "wiper_new"}, 25)
	if benignAlarms > 2 {
		t.Fatalf("benign phase raised %d alarms", benignAlarms)
	}
	if compromiseAlarms == 0 {
		t.Fatal("compromise phase raised no alarm")
	}
}

// TestFeatureStabilityAcrossSimulatorRuns asserts that features extracted
// from different traces of the same application are close in scaled space —
// the clustering property every experiment depends on.
func TestFeatureStabilityAcrossSimulatorRuns(t *testing.T) {
	sim, err := dvfs.NewSimulator(dvfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	var miner workload.DVFSBehavior
	for _, a := range workload.DVFSApps() {
		if a.Name == "miner_a" {
			miner = a
		}
	}
	var vecs [][]float64
	for i := 0; i < 20; i++ {
		trace, err := sim.Trace(miner, rng)
		if err != nil {
			t.Fatal(err)
		}
		v, err := feature.DVFSVector(trace, sim.Config().Levels)
		if err != nil {
			t.Fatal(err)
		}
		vecs = append(vecs, v)
	}
	// The normalised mean-state feature must be consistently high for a
	// miner across runs (the two top ladder rungs dominate).
	meanIdx := sim.Config().Levels + 3
	for i, v := range vecs {
		if v[meanIdx] < 0.7 {
			t.Fatalf("run %d: miner mean state %.3f, want high", i, v[meanIdx])
		}
	}
}

// TestHPCPipelineOverlapBehaviour is the HPC counterpart end to end:
// moderate accuracy, entropy high for knowns, SVM non-convergent.
func TestHPCPipelineOverlapBehaviour(t *testing.T) {
	splits, err := gen.HPCWithSizes(5, gen.Sizes{Train: 2800, Test: 700, Unknown: 500})
	if err != nil {
		t.Fatal(err)
	}
	_, err = detector.New(splits.Train,
		detector.WithModel("svm"), detector.WithEnsembleSize(3),
		detector.WithSeed(5), detector.WithSVMMaxObjective(0.3))
	if err == nil {
		t.Fatal("SVM should fail to converge on HPC data")
	}
	if !detector.IsNoConvergence(err) {
		t.Fatalf("error %v should be non-convergence", err)
	}
	d, err := detector.New(splits.Train,
		detector.WithModel("rf"), detector.WithEnsembleSize(15), detector.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	rKnown, err := d.AssessDataset(splits.Test)
	if err != nil {
		t.Fatal(err)
	}
	preds := detector.Predictions(rKnown)
	hKnown := detector.Entropies(rKnown)
	rep, err := metrics.Score(splits.Test.Y(), preds)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy < 0.6 || rep.Accuracy > 0.95 {
		t.Fatalf("HPC accuracy %.3f outside overlap regime", rep.Accuracy)
	}
	var mean float64
	for _, h := range hKnown {
		mean += h
	}
	mean /= float64(len(hKnown))
	if mean < 0.3 {
		t.Fatalf("HPC known entropy %.3f should be high (overlap)", mean)
	}
}

// TestForestMatchesBaggedTrees compares the standalone random forest
// (internal/ml/forest) with the generic bagging-of-trees construction used
// by the HMD pipeline: both are random forests and must reach comparable
// accuracy on the same data.
func TestForestMatchesBaggedTrees(t *testing.T) {
	splits, err := gen.DVFSWithSizes(6, gen.Sizes{Train: 280, Test: 140, Unknown: 40})
	if err != nil {
		t.Fatal(err)
	}
	X, y := splits.Train.X(), splits.Train.Y()

	f := forest.New(forest.Config{Trees: 15, Seed: 6})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	ens := ensemble.New(ensemble.Config{
		M: 15,
		New: func(seed int64) ensemble.Classifier {
			return tree.New(tree.Config{MaxFeatures: -1, Seed: seed})
		},
		Seed: 6,
	})
	if err := ens.Fit(X, y); err != nil {
		t.Fatal(err)
	}

	acc := func(predict func([]float64) int) float64 {
		correct := 0
		for i := 0; i < splits.Test.Len(); i++ {
			s := splits.Test.At(i)
			if predict(s.Features) == s.Label {
				correct++
			}
		}
		return float64(correct) / float64(splits.Test.Len())
	}
	fa := acc(f.Predict)
	ea := acc(ens.Predict)
	if fa < 0.85 || ea < 0.85 {
		t.Fatalf("accuracies too low: forest %.3f, bagged trees %.3f", fa, ea)
	}
	if diff := math.Abs(fa - ea); diff > 0.1 {
		t.Fatalf("forest %.3f and bagged trees %.3f should be comparable", fa, ea)
	}
	// Both expose per-member votes with the same ensemble size.
	x := splits.Unknown.At(0).Features
	if len(f.Votes(x)) != 15 || len(ens.Votes(x)) != 15 {
		t.Fatal("vote lengths")
	}
}
