package reduce

import (
	"bytes"
	"encoding/gob"
	"errors"

	"trusthmd/pkg/linalg"
)

// pcaGob is the exported wire form of a fitted PCA.
type pcaGob struct {
	Mean       []float64
	Components *linalg.Matrix
	Variances  []float64
	TotalVar   float64
}

// GobEncode implements gob.GobEncoder for trained-pipeline serialization.
func (p *PCA) GobEncode() ([]byte, error) {
	if p.components == nil {
		return nil, ErrNotFitted
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(pcaGob{
		Mean:       p.mean,
		Components: p.components,
		Variances:  p.variances,
		TotalVar:   p.totalVar,
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (p *PCA) GobDecode(b []byte) error {
	var g pcaGob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&g); err != nil {
		return err
	}
	if g.Components == nil || g.Components.Rows() != len(g.Mean) {
		return errors.New("reduce: corrupt pca gob")
	}
	p.mean, p.components, p.variances, p.totalVar = g.Mean, g.Components, g.Variances, g.TotalVar
	return nil
}
