// Package reduce implements the dimensionality reduction stages of the HMD
// pipeline (Fig. 1): PCA for the in-pipeline feature compression, and exact
// t-SNE for the latent-space visualisations of Fig. 8.
package reduce

import (
	"errors"
	"fmt"

	"trusthmd/pkg/linalg"
	"trusthmd/pkg/linalg/kernel"
)

// PCA is a principal component analysis fitted on a training matrix and
// applied to later inputs with the training-set mean.
type PCA struct {
	mean       []float64
	components *linalg.Matrix // d x k, columns are principal axes
	variances  []float64      // eigenvalues of the kept components
	totalVar   float64
}

// ErrNotFitted reports use before FitPCA.
var ErrNotFitted = errors.New("reduce: not fitted")

// FitPCA learns the top-k principal components of X (one sample per row)
// via the symmetric eigendecomposition of the sample covariance.
func FitPCA(X *linalg.Matrix, k int) (*PCA, error) {
	if X.Rows() < 2 {
		return nil, fmt.Errorf("reduce: pca needs >=2 rows, got %d", X.Rows())
	}
	if k < 1 || k > X.Cols() {
		return nil, fmt.Errorf("reduce: pca k=%d outside [1,%d]", k, X.Cols())
	}
	cov, err := X.Covariance()
	if err != nil {
		return nil, fmt.Errorf("reduce: pca: %w", err)
	}
	eig, err := linalg.SymEigen(cov)
	if err != nil {
		return nil, fmt.Errorf("reduce: pca: %w", err)
	}
	d := X.Cols()
	comp := linalg.New(d, k)
	col := make([]float64, d)
	for c := 0; c < k; c++ {
		eig.Vectors.ColInto(c, col)
		for r, v := range col {
			comp.Set(r, c, v)
		}
	}
	var total float64
	for _, v := range eig.Values {
		if v > 0 {
			total += v
		}
	}
	vars := make([]float64, k)
	copy(vars, eig.Values[:k])
	return &PCA{
		mean:       X.ColMeans(),
		components: comp,
		variances:  vars,
		totalVar:   total,
	}, nil
}

// K returns the number of retained components.
func (p *PCA) K() int { return p.components.Cols() }

// ExplainedVarianceRatio returns, per kept component, the fraction of total
// variance it explains.
func (p *PCA) ExplainedVarianceRatio() []float64 {
	out := make([]float64, len(p.variances))
	if p.totalVar == 0 {
		return out
	}
	for i, v := range p.variances {
		if v > 0 {
			out[i] = v / p.totalVar
		}
	}
	return out
}

// Transform projects X onto the retained components.
func (p *PCA) Transform(X *linalg.Matrix) (*linalg.Matrix, error) {
	if p.components == nil {
		return nil, ErrNotFitted
	}
	centered := X.Clone()
	dst := linalg.New(X.Rows(), p.K())
	if err := p.TransformInto(dst, centered); err != nil {
		return nil, err
	}
	return dst, nil
}

// TransformInto projects X onto the retained components, writing the
// result into dst (Rows() x K). X is centered IN PLACE as scratch — pass a
// matrix you own (batch pipelines reuse their scaled scratch matrix here,
// so the steady state allocates nothing). dst must not alias X.
func (p *PCA) TransformInto(dst, X *linalg.Matrix) error {
	if p.components == nil {
		return ErrNotFitted
	}
	if X.Cols() != len(p.mean) {
		return fmt.Errorf("reduce: pca fitted on %d features, got %d", len(p.mean), X.Cols())
	}
	if err := X.CenterRows(p.mean); err != nil {
		return err
	}
	return X.MulInto(dst, p.components)
}

// TransformVec projects a single vector.
func (p *PCA) TransformVec(x []float64) ([]float64, error) {
	if p.components == nil {
		return nil, ErrNotFitted
	}
	out := make([]float64, p.K())
	centered := make([]float64, len(x))
	copy(centered, x)
	if err := p.TransformVecInto(out, centered); err != nil {
		return nil, err
	}
	return out, nil
}

// TransformVecInto projects x onto the retained components into dst
// (length K). x is centered IN PLACE as scratch — pass a buffer you own.
// dst must not alias x.
func (p *PCA) TransformVecInto(dst, x []float64) error {
	if p.components == nil {
		return ErrNotFitted
	}
	if len(x) != len(p.mean) {
		return fmt.Errorf("reduce: pca fitted on %d features, got %d", len(p.mean), len(x))
	}
	if len(dst) != p.K() {
		return fmt.Errorf("reduce: pca output len %d, want %d", len(dst), p.K())
	}
	kernel.Sub(x, x, p.mean)
	// Accumulate dst += x[r] * components.Row(r) over rows. Per output
	// element c this adds the terms in the same ascending-r order as the
	// dot-product form, so the result is bit-identical — but each step is
	// a contiguous axpy over the K-wide component row, which vectorizes.
	// No zero-skip: the dot form includes every term, and 0*Inf would
	// differ.
	for c := range dst {
		dst[c] = 0
	}
	for r, v := range x {
		kernel.Axpy(dst, v, p.components.Row(r))
	}
	return nil
}
