// Package reduce implements the dimensionality reduction stages of the HMD
// pipeline (Fig. 1): PCA for the in-pipeline feature compression, and exact
// t-SNE for the latent-space visualisations of Fig. 8.
package reduce

import (
	"errors"
	"fmt"

	"trusthmd/pkg/linalg"
)

// PCA is a principal component analysis fitted on a training matrix and
// applied to later inputs with the training-set mean.
type PCA struct {
	mean       []float64
	components *linalg.Matrix // d x k, columns are principal axes
	variances  []float64      // eigenvalues of the kept components
	totalVar   float64
}

// ErrNotFitted reports use before FitPCA.
var ErrNotFitted = errors.New("reduce: not fitted")

// FitPCA learns the top-k principal components of X (one sample per row)
// via the symmetric eigendecomposition of the sample covariance.
func FitPCA(X *linalg.Matrix, k int) (*PCA, error) {
	if X.Rows() < 2 {
		return nil, fmt.Errorf("reduce: pca needs >=2 rows, got %d", X.Rows())
	}
	if k < 1 || k > X.Cols() {
		return nil, fmt.Errorf("reduce: pca k=%d outside [1,%d]", k, X.Cols())
	}
	cov, err := X.Covariance()
	if err != nil {
		return nil, fmt.Errorf("reduce: pca: %w", err)
	}
	eig, err := linalg.SymEigen(cov)
	if err != nil {
		return nil, fmt.Errorf("reduce: pca: %w", err)
	}
	d := X.Cols()
	comp := linalg.New(d, k)
	for c := 0; c < k; c++ {
		for r := 0; r < d; r++ {
			comp.Set(r, c, eig.Vectors.At(r, c))
		}
	}
	var total float64
	for _, v := range eig.Values {
		if v > 0 {
			total += v
		}
	}
	vars := make([]float64, k)
	copy(vars, eig.Values[:k])
	return &PCA{
		mean:       X.ColMeans(),
		components: comp,
		variances:  vars,
		totalVar:   total,
	}, nil
}

// K returns the number of retained components.
func (p *PCA) K() int { return p.components.Cols() }

// ExplainedVarianceRatio returns, per kept component, the fraction of total
// variance it explains.
func (p *PCA) ExplainedVarianceRatio() []float64 {
	out := make([]float64, len(p.variances))
	if p.totalVar == 0 {
		return out
	}
	for i, v := range p.variances {
		if v > 0 {
			out[i] = v / p.totalVar
		}
	}
	return out
}

// Transform projects X onto the retained components.
func (p *PCA) Transform(X *linalg.Matrix) (*linalg.Matrix, error) {
	if p.components == nil {
		return nil, ErrNotFitted
	}
	if X.Cols() != len(p.mean) {
		return nil, fmt.Errorf("reduce: pca fitted on %d features, got %d", len(p.mean), X.Cols())
	}
	centered := X.Clone()
	if err := centered.CenterRows(p.mean); err != nil {
		return nil, err
	}
	return centered.Mul(p.components)
}

// TransformVec projects a single vector.
func (p *PCA) TransformVec(x []float64) ([]float64, error) {
	if p.components == nil {
		return nil, ErrNotFitted
	}
	if len(x) != len(p.mean) {
		return nil, fmt.Errorf("reduce: pca fitted on %d features, got %d", len(p.mean), len(x))
	}
	centered := make([]float64, len(x))
	for j, v := range x {
		centered[j] = v - p.mean[j]
	}
	out := make([]float64, p.K())
	for c := 0; c < p.K(); c++ {
		var s float64
		for r, v := range centered {
			s += v * p.components.At(r, c)
		}
		out[c] = s
	}
	return out, nil
}
