package reduce

import (
	"math"
	"math/rand"
	"testing"

	"trusthmd/internal/stats"
	"trusthmd/pkg/linalg"
)

func TestPCARecoversDominantAxis(t *testing.T) {
	// Data varies strongly along (1,1)/sqrt(2) and weakly orthogonally.
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 300)
	for i := range rows {
		a := rng.NormFloat64() * 5
		b := rng.NormFloat64() * 0.3
		rows[i] = []float64{a + b, a - b}
	}
	X := linalg.MustFromRows(rows)
	p, err := FitPCA(X, 1)
	if err != nil {
		t.Fatal(err)
	}
	// First component should align with (1,1)/sqrt(2) up to sign.
	c0 := p.components.Col(0)
	if math.Abs(math.Abs(c0[0])-1/math.Sqrt2) > 0.05 || math.Abs(c0[0]-c0[1]) > 0.05 {
		t.Fatalf("component %v", c0)
	}
	ratio := p.ExplainedVarianceRatio()
	if ratio[0] < 0.95 {
		t.Fatalf("explained %v, want > 0.95", ratio[0])
	}
	if p.K() != 1 {
		t.Fatalf("k=%d", p.K())
	}
}

func TestPCATransformShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := make([][]float64, 50)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	X := linalg.MustFromRows(rows)
	p, err := FitPCA(X, 2)
	if err != nil {
		t.Fatal(err)
	}
	Z, err := p.Transform(X)
	if err != nil {
		t.Fatal(err)
	}
	if Z.Rows() != 50 || Z.Cols() != 2 {
		t.Fatalf("Z is %dx%d", Z.Rows(), Z.Cols())
	}
	// Projected data is centered.
	mu := Z.ColMeans()
	if math.Abs(mu[0]) > 1e-9 || math.Abs(mu[1]) > 1e-9 {
		t.Fatalf("projection not centered: %v", mu)
	}
	// Vector transform agrees with matrix transform.
	v, err := p.TransformVec(X.Row(7))
	if err != nil {
		t.Fatal(err)
	}
	for j := range v {
		if math.Abs(v[j]-Z.At(7, j)) > 1e-9 {
			t.Fatalf("vec/matrix transform disagree: %v vs %v", v[j], Z.At(7, j))
		}
	}
}

func TestPCAPreservesPairwiseStructure(t *testing.T) {
	// Full-rank PCA is a rotation: pairwise distances are preserved.
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 30)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	X := linalg.MustFromRows(rows)
	p, err := FitPCA(X, 2)
	if err != nil {
		t.Fatal(err)
	}
	Z, err := p.Transform(X)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			dX := linalg.Dist(X.Row(i), X.Row(j))
			dZ := linalg.Dist(Z.Row(i), Z.Row(j))
			if math.Abs(dX-dZ) > 1e-6 {
				t.Fatalf("distance not preserved: %v vs %v", dX, dZ)
			}
		}
	}
}

func TestPCAErrors(t *testing.T) {
	if _, err := FitPCA(linalg.New(1, 3), 1); err == nil {
		t.Fatal("expected rows error")
	}
	X := linalg.MustFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if _, err := FitPCA(X, 0); err == nil {
		t.Fatal("expected k error")
	}
	if _, err := FitPCA(X, 3); err == nil {
		t.Fatal("expected k error")
	}
	p, err := FitPCA(X, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Transform(linalg.New(2, 3)); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := p.TransformVec([]float64{1}); err == nil {
		t.Fatal("expected dim error")
	}
	var unfitted PCA
	if _, err := unfitted.Transform(X); err == nil {
		t.Fatal("expected unfitted error")
	}
	if _, err := unfitted.TransformVec([]float64{1, 2}); err == nil {
		t.Fatal("expected unfitted error")
	}
}

// clusters draws k Gaussian clusters of m points each, spaced far apart.
func clusters(rng *rand.Rand, k, m int, spacing float64) (*linalg.Matrix, []int) {
	var rows [][]float64
	var labels []int
	for c := 0; c < k; c++ {
		cx := float64(c) * spacing
		for i := 0; i < m; i++ {
			rows = append(rows, []float64{
				cx + rng.NormFloat64()*0.3,
				rng.NormFloat64() * 0.3,
				rng.NormFloat64() * 0.3,
			})
			labels = append(labels, c)
		}
	}
	return linalg.MustFromRows(rows), labels
}

func TestTSNESeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, labels := clusters(rng, 3, 25, 20)
	Y, err := FitTSNE(X, TSNEConfig{Perplexity: 10, Iterations: 600, LearningRate: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if Y.Rows() != X.Rows() || Y.Cols() != 2 {
		t.Fatalf("embedding %dx%d", Y.Rows(), Y.Cols())
	}
	pts := make([][]float64, Y.Rows())
	for i := range pts {
		pts[i] = Y.Row(i)
	}
	sil, err := stats.Silhouette(pts, labels)
	if err != nil {
		t.Fatal(err)
	}
	if sil < 0.5 {
		t.Fatalf("silhouette %v: well-separated clusters must stay separated in the embedding", sil)
	}
}

func TestTSNEDefaultsAndErrors(t *testing.T) {
	if _, err := FitTSNE(linalg.New(3, 2), TSNEConfig{}); err == nil {
		t.Fatal("expected size error")
	}
	// Tiny input: perplexity auto-clamped, all defaults exercised.
	rng := rand.New(rand.NewSource(5))
	rows := make([][]float64, 12)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	Y, err := FitTSNE(linalg.MustFromRows(rows), TSNEConfig{Iterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < Y.Rows(); i++ {
		for j := 0; j < Y.Cols(); j++ {
			if math.IsNaN(Y.At(i, j)) || math.IsInf(Y.At(i, j), 0) {
				t.Fatalf("non-finite embedding value at (%d,%d)", i, j)
			}
		}
	}
}

func TestTSNEDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rows := make([][]float64, 20)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	X := linalg.MustFromRows(rows)
	a, err := FitTSNE(X, TSNEConfig{Iterations: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitTSNE(X, TSNEConfig{Iterations: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b, 1e-12) {
		t.Fatal("same seed must give same embedding")
	}
}
