package reduce

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"trusthmd/pkg/linalg"
)

// TSNEConfig controls the exact t-SNE embedding (van der Maaten & Hinton
// 2008) used for the paper's Fig. 8 latent-space plots. Zero values fall
// back to the documented defaults.
type TSNEConfig struct {
	// Perplexity is the effective number of neighbours (default 30). It
	// must be < (n-1)/3 for the bisection to be well posed; FitTSNE lowers
	// it automatically for small inputs.
	Perplexity float64
	// Iterations is the number of gradient steps (default 500).
	Iterations int
	// LearningRate is the gradient step size (default 200).
	LearningRate float64
	// EarlyExaggeration multiplies affinities for the first quarter of the
	// iterations (default 12).
	EarlyExaggeration float64
	// OutDims is the embedding dimensionality (default 2).
	OutDims int
	// Seed drives the initial layout.
	Seed int64
}

// FitTSNE embeds the rows of X into OutDims dimensions. The cost is
// O(n^2 d + iterations * n^2), suitable for the few-thousand-point
// visualisation subsets used in Fig. 8.
func FitTSNE(X *linalg.Matrix, cfg TSNEConfig) (*linalg.Matrix, error) {
	n := X.Rows()
	if n < 4 {
		return nil, fmt.Errorf("reduce: tsne needs >=4 rows, got %d", n)
	}
	if cfg.Perplexity <= 0 {
		cfg.Perplexity = 30
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 500
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 200
	}
	if cfg.EarlyExaggeration <= 0 {
		cfg.EarlyExaggeration = 12
	}
	if cfg.OutDims <= 0 {
		cfg.OutDims = 2
	}
	if max := float64(n-1) / 3; cfg.Perplexity > max {
		cfg.Perplexity = max
	}

	P, err := jointAffinities(X, cfg.Perplexity)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	Y := linalg.New(n, cfg.OutDims)
	for i := 0; i < n; i++ {
		for j := 0; j < cfg.OutDims; j++ {
			Y.Set(i, j, rng.NormFloat64()*1e-4)
		}
	}

	velocity := linalg.New(n, cfg.OutDims)
	gains := linalg.New(n, cfg.OutDims)
	for i := 0; i < n; i++ {
		for j := 0; j < cfg.OutDims; j++ {
			gains.Set(i, j, 1)
		}
	}

	exaggerationStop := cfg.Iterations / 4
	grad := linalg.New(n, cfg.OutDims)
	Q := make([]float64, n*n)

	for iter := 0; iter < cfg.Iterations; iter++ {
		exag := 1.0
		if iter < exaggerationStop {
			exag = cfg.EarlyExaggeration
		}
		momentum := 0.5
		if iter >= exaggerationStop {
			momentum = 0.8
		}

		// Student-t affinities in the embedding.
		var qSum float64
		for i := 0; i < n; i++ {
			yi := Y.Row(i)
			for j := i + 1; j < n; j++ {
				q := 1 / (1 + linalg.SqDist(yi, Y.Row(j)))
				Q[i*n+j] = q
				Q[j*n+i] = q
				qSum += 2 * q
			}
		}
		if qSum < 1e-300 {
			qSum = 1e-300
		}

		// Gradient: 4 * sum_j (exag*p_ij - q_ij/qSum) * q_ij * (y_i - y_j).
		for i := 0; i < n; i++ {
			gi := grad.Row(i)
			for j := range gi {
				gi[j] = 0
			}
			yi := Y.Row(i)
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				qij := Q[i*n+j]
				coeff := 4 * (exag*P.At(i, j) - qij/qSum) * qij
				yj := Y.Row(j)
				for k := range gi {
					gi[k] += coeff * (yi[k] - yj[k])
				}
			}
		}

		// Momentum update with adaptive per-parameter gains.
		for i := 0; i < n; i++ {
			for j := 0; j < cfg.OutDims; j++ {
				g := grad.At(i, j)
				v := velocity.At(i, j)
				gain := gains.At(i, j)
				if (g > 0) == (v > 0) {
					gain *= 0.8
				} else {
					gain += 0.2
				}
				if gain < 0.01 {
					gain = 0.01
				}
				gains.Set(i, j, gain)
				v = momentum*v - cfg.LearningRate*gain*g
				velocity.Set(i, j, v)
				Y.Set(i, j, Y.At(i, j)+v)
			}
		}

		// Re-centre to remove drift.
		mu := Y.ColMeans()
		_ = Y.CenterRows(mu)
	}
	return Y, nil
}

// jointAffinities computes the symmetrised conditional Gaussian affinity
// matrix P with per-point bandwidths found by bisection on perplexity.
func jointAffinities(X *linalg.Matrix, perplexity float64) (*linalg.Matrix, error) {
	n := X.Rows()
	targetH := math.Log(perplexity) // entropy target in nats

	D := make([]float64, n*n)
	for i := 0; i < n; i++ {
		xi := X.Row(i)
		for j := i + 1; j < n; j++ {
			d := linalg.SqDist(xi, X.Row(j))
			D[i*n+j] = d
			D[j*n+i] = d
		}
	}

	P := linalg.New(n, n)
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		betaMin, betaMax := math.Inf(-1), math.Inf(1)
		beta := 1.0
		for iter := 0; iter < 64; iter++ {
			h, ok := condDistribution(D[i*n:(i+1)*n], i, beta, row)
			if !ok {
				return nil, errors.New("reduce: tsne: degenerate distance row (all points identical?)")
			}
			diff := h - targetH
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 { // entropy too high -> sharpen
				betaMin = beta
				if math.IsInf(betaMax, 1) {
					beta *= 2
				} else {
					beta = (beta + betaMax) / 2
				}
			} else {
				betaMax = beta
				if math.IsInf(betaMin, -1) {
					beta /= 2
				} else {
					beta = (beta + betaMin) / 2
				}
			}
		}
		copy(P.Row(i), row)
	}

	// Symmetrise and normalise: p_ij = (p_j|i + p_i|j) / 2n, floored to
	// keep gradients alive.
	out := linalg.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := (P.At(i, j) + P.At(j, i)) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			out.Set(i, j, v)
		}
	}
	return out, nil
}

// condDistribution fills row with the conditional distribution p_{j|i} for
// bandwidth beta and returns its Shannon entropy (nats). ok=false when the
// distribution degenerates.
func condDistribution(dists []float64, i int, beta float64, row []float64) (h float64, ok bool) {
	var sum float64
	minD := math.Inf(1)
	for j, d := range dists {
		if j != i && d < minD {
			minD = d
		}
	}
	for j, d := range dists {
		if j == i {
			row[j] = 0
			continue
		}
		// Subtract the minimum distance for numerical stability.
		row[j] = math.Exp(-beta * (d - minD))
		sum += row[j]
	}
	if sum <= 0 || math.IsNaN(sum) {
		return 0, false
	}
	var entropy float64
	for j := range row {
		if j == i || row[j] == 0 {
			continue
		}
		p := row[j] / sum
		row[j] = p
		entropy -= p * math.Log(p)
	}
	return entropy, true
}
