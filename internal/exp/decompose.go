package exp

import (
	"fmt"

	"trusthmd/internal/gen"
	"trusthmd/pkg/dataset"
	"trusthmd/pkg/detector"
)

// SourceRow is one (dataset, split) cell of the A5 source-separation study:
// the mean total/aleatoric/epistemic uncertainty of a leaf-limited RF
// ensemble.
type SourceRow struct {
	Dataset   string
	Split     string // "known" or "unknown"
	Total     float64
	Aleatoric float64
	Epistemic float64
}

// SourcesResult is experiment A5 (extension — the paper's §VI names the
// separation of uncertainty sources as future work): the mutual-information
// decomposition applied to both datasets. Expected shape:
//
//   - DVFS unknown: epistemic-dominated (zero-days are out of distribution;
//     members disagree) — exactly the case retraining can fix;
//   - HPC known: aleatoric-dominated (members agree the inputs are
//     ambiguous) — the case no amount of data fixes, matching the paper's
//     verdict that the HPC dataset cannot yield a trustworthy HMD.
type SourcesResult struct {
	Rows []SourceRow
}

// AblationSources runs A5 with leaf-limited random forests: large leaves
// emit soft class posteriors, so a member can be *individually uncertain*
// (mixed leaf = aleatoric) as well as *collectively divided* (scattered
// thresholds = epistemic). Fully grown forests would register everything
// as epistemic; fully converged linear members register boundary ambiguity
// as aleatoric. The decomposition rides along on the batched assessment
// (WithDecomposition), sharing its single pass over member outputs.
func AblationSources(cfg Config) (*SourcesResult, error) {
	cfg = cfg.normalized()
	res := &SourcesResult{}
	for _, d := range []struct {
		name string
		load func() (gen.Splits, error)
	}{
		{"DVFS", cfg.dvfsData},
		{"HPC", cfg.hpcData},
	} {
		data, err := d.load()
		if err != nil {
			return nil, fmt.Errorf("exp: ablation sources %s: %w", d.name, err)
		}
		det, err := cfg.train(data.Train, "rf",
			detector.WithTreeLimits(0, 25), detector.WithDecomposition(true))
		if err != nil {
			return nil, fmt.Errorf("exp: ablation sources %s: %w", d.name, err)
		}
		for _, e := range []struct {
			split string
			set   *dataset.Dataset
		}{{"known", data.Test}, {"unknown", data.Unknown}} {
			rs, err := det.AssessDataset(e.set)
			if err != nil {
				return nil, err
			}
			row := SourceRow{Dataset: d.name, Split: e.split}
			for _, r := range rs {
				row.Total += r.Decomposition.Total
				row.Aleatoric += r.Decomposition.Aleatoric
				row.Epistemic += r.Decomposition.Epistemic
			}
			n := float64(len(rs))
			row.Total /= n
			row.Aleatoric /= n
			row.Epistemic /= n
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Render prints the decomposition table.
func (r *SourcesResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		share := 0.0
		if row.Total > 0 {
			share = row.Epistemic / row.Total
		}
		rows = append(rows, []string{
			row.Dataset, row.Split,
			fmt.Sprintf("%.3f", row.Total),
			fmt.Sprintf("%.3f", row.Aleatoric),
			fmt.Sprintf("%.3f", row.Epistemic),
			fmt.Sprintf("%.0f%%", 100*share),
		})
	}
	return "Ablation A5 (leaf-limited RF): uncertainty source separation (paper's future work)\n" +
		table([]string{"Dataset", "Split", "Total", "Aleatoric", "Epistemic", "Epistemic share"}, rows)
}
