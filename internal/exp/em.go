package exp

import (
	"fmt"

	"trusthmd/internal/core"
	"trusthmd/internal/gen"
	"trusthmd/internal/metrics"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/linalg"
)

// EMRow is one model row of the E1 sensor-generalisation study.
type EMRow struct {
	Model          string
	Accuracy       float64
	KnownEntropy   float64
	UnknownEntropy float64
	OperatingPoint core.OperatingPoint // at the paper's 0.40 threshold
}

// EMResult is experiment E1 (extension): the trusted-HMD framework applied
// unchanged to a third telemetry substrate — EM side-channel emission
// spectra (the HMD family of Nazari et al. [4], cited in the paper's
// introduction). The expected shape matches DVFS: classes are disjoint in
// spectral space, unknowns fall in the spectral gap, RF uncertainty flags
// them.
type EMResult struct {
	Rows []EMRow
}

// EMGeneralization runs E1 with the RF and LR pipelines.
func EMGeneralization(cfg Config) (*EMResult, error) {
	cfg = cfg.normalized()
	data, err := gen.EMWithSizes(cfg.Seed+2, cfg.scaled(gen.EMSizes))
	if err != nil {
		return nil, fmt.Errorf("exp: em generalization: %w", err)
	}
	res := &EMResult{}
	for _, model := range []string{"rf", "lr"} {
		d, err := cfg.train(data.Train, model)
		if err != nil {
			return nil, fmt.Errorf("exp: em generalization %s: %w", model, err)
		}
		rKnown, err := d.AssessDataset(data.Test)
		if err != nil {
			return nil, err
		}
		rUnknown, err := d.AssessDataset(data.Unknown)
		if err != nil {
			return nil, err
		}
		hKnown := detector.Entropies(rKnown)
		hUnknown := detector.Entropies(rUnknown)
		rep, err := metrics.Score(data.Test.Y(), detector.Predictions(rKnown))
		if err != nil {
			return nil, err
		}
		op, err := core.At(HeadlineThreshold, hKnown, hUnknown)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, EMRow{
			Model:          model,
			Accuracy:       rep.Accuracy,
			KnownEntropy:   linalg.Mean(hKnown),
			UnknownEntropy: linalg.Mean(hUnknown),
			OperatingPoint: op,
		})
	}
	return res, nil
}

// Render prints the E1 table.
func (r *EMResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			displayModel(row.Model),
			fmt.Sprintf("%.3f", row.Accuracy),
			fmt.Sprintf("%.3f", row.KnownEntropy),
			fmt.Sprintf("%.3f", row.UnknownEntropy),
			fmt.Sprintf("%.1f%%", row.OperatingPoint.KnownRejectedPct),
			fmt.Sprintf("%.1f%%", row.OperatingPoint.UnknownRejectedPct),
		})
	}
	return "Experiment E1 (extension): trusted HMD on EM emission telemetry\n" +
		table([]string{"Model", "Accuracy", "KnownH", "UnknownH", "rejK@0.40", "rejU@0.40"}, rows)
}
