package exp

import (
	"fmt"

	"trusthmd/internal/gen"
	"trusthmd/internal/stats"
	"trusthmd/pkg/detector"
)

// EntropySummary is one box of Figs. 4/5: the distribution of estimated
// entropies for one (model, split) pair.
type EntropySummary struct {
	Model   string
	Split   string // "known" or "unknown"
	Summary stats.FiveNumber
}

// BoxplotResult reproduces Fig. 4 (DVFS) or Fig. 5 (HPC).
type BoxplotResult struct {
	Dataset string
	Boxes   []EntropySummary
	// Excluded records models that could not be trained, with the reason —
	// the paper excludes SVM from Fig. 5 because it "failed to converge
	// using the bootstrapped dataset".
	Excluded map[string]string
}

// Fig4 computes the entropy box plots of the paper's Fig. 4: DVFS dataset,
// RF / LR / SVM ensembles, known vs unknown inputs.
func Fig4(cfg Config) (*BoxplotResult, error) {
	cfg = cfg.normalized()
	data, err := cfg.dvfsData()
	if err != nil {
		return nil, fmt.Errorf("exp: fig4: %w", err)
	}
	return entropyBoxes(cfg, "DVFS", data)
}

// Fig5 computes the entropy box plots of the paper's Fig. 5: HPC dataset.
// The SVM ensemble fails to converge on the overlapping HPC classes and is
// recorded in Excluded rather than aborting the experiment, exactly as in
// the paper's §V-B.
func Fig5(cfg Config) (*BoxplotResult, error) {
	cfg = cfg.normalized()
	data, err := cfg.hpcData()
	if err != nil {
		return nil, fmt.Errorf("exp: fig5: %w", err)
	}
	return entropyBoxes(cfg, "HPC", data)
}

func entropyBoxes(cfg Config, name string, data gen.Splits) (*BoxplotResult, error) {
	res := &BoxplotResult{Dataset: name, Excluded: map[string]string{}}
	for _, model := range Models {
		d, err := cfg.train(data.Train, model)
		if err != nil {
			if detector.IsNoConvergence(err) {
				res.Excluded[model] = err.Error()
				continue
			}
			return nil, fmt.Errorf("exp: %s %s: %w", name, model, err)
		}
		rKnown, err := d.AssessDataset(data.Test)
		if err != nil {
			return nil, fmt.Errorf("exp: %s %s known: %w", name, model, err)
		}
		rUnknown, err := d.AssessDataset(data.Unknown)
		if err != nil {
			return nil, fmt.Errorf("exp: %s %s unknown: %w", name, model, err)
		}
		for _, e := range []struct {
			split string
			h     []float64
		}{{"known", detector.Entropies(rKnown)}, {"unknown", detector.Entropies(rUnknown)}} {
			s, err := stats.Summarize(e.h)
			if err != nil {
				return nil, fmt.Errorf("exp: %s %s %s: %w", name, model, e.split, err)
			}
			res.Boxes = append(res.Boxes, EntropySummary{Model: model, Split: e.split, Summary: s})
		}
	}
	return res, nil
}

// Render prints one row per box with the five-number summary.
func (r *BoxplotResult) Render() string {
	figure := "Fig. 4"
	if r.Dataset == "HPC" {
		figure = "Fig. 5"
	}
	rows := make([][]string, 0, len(r.Boxes))
	for _, b := range r.Boxes {
		rows = append(rows, []string{
			displayModel(b.Model), b.Split,
			fmt.Sprintf("%.3f", b.Summary.Min),
			fmt.Sprintf("%.3f", b.Summary.Q1),
			fmt.Sprintf("%.3f", b.Summary.Median),
			fmt.Sprintf("%.3f", b.Summary.Q3),
			fmt.Sprintf("%.3f", b.Summary.Max),
			fmt.Sprintf("%.3f", b.Summary.Mean),
		})
	}
	out := figure + ": estimated entropies, " + r.Dataset + " dataset\n" +
		table([]string{"Model", "Split", "Min", "Q1", "Median", "Q3", "Max", "Mean"}, rows)
	for model, reason := range r.Excluded {
		out += fmt.Sprintf("excluded %s: %s\n", displayModel(model), reason)
	}
	return out
}
