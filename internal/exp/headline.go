package exp

import (
	"fmt"

	"trusthmd/internal/core"
	"trusthmd/internal/metrics"
	"trusthmd/pkg/detector"
)

// HeadlineResult holds the paper's two quantitative headline claims.
type HeadlineResult struct {
	// H1 (§V-A): DVFS RF at entropy threshold 0.40 rejects ~95 % of
	// unknown workloads while rejecting < 5 % of known workloads.
	DVFSOperatingPoint core.OperatingPoint
	// H2 (§V-B): HPC RF accuracy ~0.84 on known data; rejecting uncertain
	// predictions raises F1 to ~0.95 via higher precision.
	HPCBaseline      metrics.Report
	HPCAfterReject   core.F1Point
	HPCRejectedAtOpt float64
}

// HeadlineThreshold is the paper's chosen DVFS operating threshold.
const HeadlineThreshold = 0.40

// Headlines computes both headline numbers with the RF pipelines.
func Headlines(cfg Config) (*HeadlineResult, error) {
	cfg = cfg.normalized()
	res := &HeadlineResult{}

	// H1: DVFS RF operating point.
	dvfs, err := cfg.dvfsData()
	if err != nil {
		return nil, fmt.Errorf("exp: headlines: %w", err)
	}
	pd, err := cfg.train(dvfs.Train, "rf")
	if err != nil {
		return nil, fmt.Errorf("exp: headlines dvfs: %w", err)
	}
	rKnown, err := pd.AssessDataset(dvfs.Test)
	if err != nil {
		return nil, err
	}
	rUnknown, err := pd.AssessDataset(dvfs.Unknown)
	if err != nil {
		return nil, err
	}
	res.DVFSOperatingPoint, err = core.At(HeadlineThreshold,
		detector.Entropies(rKnown), detector.Entropies(rUnknown))
	if err != nil {
		return nil, err
	}

	// H2: HPC RF F1 before and after rejection.
	hpc, err := cfg.hpcData()
	if err != nil {
		return nil, fmt.Errorf("exp: headlines: %w", err)
	}
	ph, err := cfg.train(hpc.Train, "rf")
	if err != nil {
		return nil, fmt.Errorf("exp: headlines hpc: %w", err)
	}
	rTest, err := ph.AssessDataset(hpc.Test)
	if err != nil {
		return nil, err
	}
	preds, entropies := detector.Predictions(rTest), detector.Entropies(rTest)
	yTrue := hpc.Test.Y()
	res.HPCBaseline, err = metrics.Score(yTrue, preds)
	if err != nil {
		return nil, err
	}
	// Pick the best F1 over the threshold grid, as the paper's "upon
	// rejecting the uncertain predictions" (it does not fix a threshold).
	thresholds, err := core.Thresholds(0.05, 0.85, 0.05)
	if err != nil {
		return nil, err
	}
	curve, err := core.F1Curve(yTrue, preds, entropies, thresholds)
	if err != nil {
		return nil, err
	}
	best := curve[0]
	for _, pt := range curve[1:] {
		if pt.F1 > best.F1 {
			best = pt
		}
	}
	res.HPCAfterReject = best
	res.HPCRejectedAtOpt = best.RejectedPct
	return res, nil
}

// Render prints the paper-vs-measured headline comparison.
func (r *HeadlineResult) Render() string {
	out := "Headline results\n"
	out += fmt.Sprintf(
		"H1 (DVFS RF @ threshold %.2f): unknown rejected %.1f%% (paper ~95%%), known rejected %.1f%% (paper <5%%)\n",
		HeadlineThreshold, r.DVFSOperatingPoint.UnknownRejectedPct, r.DVFSOperatingPoint.KnownRejectedPct)
	out += fmt.Sprintf(
		"H2 (HPC RF): baseline acc %.3f / f1 %.3f (paper ~0.84); after rejection f1 %.3f at threshold %.2f rejecting %.1f%% (paper ~0.95)\n",
		r.HPCBaseline.Accuracy, r.HPCBaseline.F1, r.HPCAfterReject.F1, r.HPCAfterReject.Threshold, r.HPCRejectedAtOpt)
	return out
}
