package exp

import (
	"fmt"

	"trusthmd/internal/core"
	"trusthmd/internal/ml/linear"
	"trusthmd/internal/ml/platt"
	"trusthmd/pkg/dataset"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/linalg"
)

// PlattResult is ablation A1: Platt-scaled single-model confidence versus
// ensemble vote entropy on out-of-distribution inputs. The paper's §II-E
// argues that a calibrated point estimate (Chawla et al. [5]) stays
// confident on unknown inputs while the vote-entropy estimator flags them.
type PlattResult struct {
	// MeanConfidenceKnown/Unknown: Platt-calibrated confidence max(p,1-p)
	// of one logistic model.
	MeanConfidenceKnown   float64
	MeanConfidenceUnknown float64
	// MeanEntropyKnown/Unknown: vote entropy of the LR bagging ensemble.
	MeanEntropyKnown   float64
	MeanEntropyUnknown float64
}

// AblationPlatt runs A1 on the DVFS dataset.
func AblationPlatt(cfg Config) (*PlattResult, error) {
	cfg = cfg.normalized()
	data, err := cfg.dvfsData()
	if err != nil {
		return nil, fmt.Errorf("exp: ablation platt: %w", err)
	}

	// The single-model baseline stays deliberately outside the detector
	// pipeline: one logistic model plus Platt scaling on held-out scores.
	X := data.Train.X()
	scaler, err := dataset.FitScaler(X)
	if err != nil {
		return nil, err
	}
	Xs, err := scaler.Transform(X)
	if err != nil {
		return nil, err
	}
	lr := linear.NewLogistic(linear.LogisticConfig{Seed: cfg.Seed, Epochs: 60})
	if err := lr.Fit(Xs, data.Train.Y()); err != nil {
		return nil, err
	}
	calScores := make([]float64, data.Test.Len())
	for i := 0; i < data.Test.Len(); i++ {
		z, err := scaler.TransformVec(data.Test.At(i).Features)
		if err != nil {
			return nil, err
		}
		calScores[i] = lr.Score(z)
	}
	cal, err := platt.Fit(calScores, data.Test.Y())
	if err != nil {
		return nil, err
	}

	confidence := func(d *dataset.Dataset) (float64, error) {
		var sum float64
		for i := 0; i < d.Len(); i++ {
			z, err := scaler.TransformVec(d.At(i).Features)
			if err != nil {
				return 0, err
			}
			sum += cal.Confidence(lr.Score(z))
		}
		return sum / float64(d.Len()), nil
	}

	res := &PlattResult{}
	if res.MeanConfidenceKnown, err = confidence(data.Test); err != nil {
		return nil, err
	}
	if res.MeanConfidenceUnknown, err = confidence(data.Unknown); err != nil {
		return nil, err
	}

	// LR ensemble vote entropy for the same inputs.
	d, err := cfg.train(data.Train, "lr")
	if err != nil {
		return nil, err
	}
	rKnown, err := d.AssessDataset(data.Test)
	if err != nil {
		return nil, err
	}
	rUnknown, err := d.AssessDataset(data.Unknown)
	if err != nil {
		return nil, err
	}
	res.MeanEntropyKnown = linalg.Mean(detector.Entropies(rKnown))
	res.MeanEntropyUnknown = linalg.Mean(detector.Entropies(rUnknown))
	return res, nil
}

// Render prints A1's comparison.
func (r *PlattResult) Render() string {
	return "Ablation A1 (DVFS): Platt-scaled confidence vs ensemble vote entropy\n" +
		fmt.Sprintf("  Platt confidence: known %.3f, unknown %.3f (stays high on OOD: gap %.3f)\n",
			r.MeanConfidenceKnown, r.MeanConfidenceUnknown, r.MeanConfidenceKnown-r.MeanConfidenceUnknown) +
		fmt.Sprintf("  Vote entropy:     known %.3f, unknown %.3f (flags OOD: gap %.3f)\n",
			r.MeanEntropyKnown, r.MeanEntropyUnknown, r.MeanEntropyUnknown-r.MeanEntropyKnown)
}

// PosteriorRow is one model's A2 comparison.
type PosteriorRow struct {
	Model                            string
	VoteKnown, VoteUnknown           float64
	PosteriorKnown, PosteriorUnknown float64
}

// PosteriorResult is ablation A2: hard-vote entropy (the paper's estimator)
// versus the entropy of the averaged member posterior (Eq. 3 with soft
// probability outputs) on DVFS. For fully-grown forests the two coincide —
// pure leaves emit one-hot distributions — while logistic ensembles show
// the posterior's extra smoothness.
type PosteriorResult struct {
	Rows []PosteriorRow
}

// AblationPosterior runs A2 for the RF and LR pipelines.
func AblationPosterior(cfg Config) (*PosteriorResult, error) {
	cfg = cfg.normalized()
	data, err := cfg.dvfsData()
	if err != nil {
		return nil, fmt.Errorf("exp: ablation posterior: %w", err)
	}
	res := &PosteriorResult{}
	for _, model := range []string{"rf", "lr"} {
		d, err := cfg.train(data.Train, model)
		if err != nil {
			return nil, err
		}
		eval := func(ds *dataset.Dataset) (vote, post float64, err error) {
			rs, err := d.AssessDataset(ds)
			if err != nil {
				return 0, 0, err
			}
			for i, r := range rs {
				vote += r.Entropy
				pp, err := d.Posterior(ds.At(i).Features)
				if err != nil {
					return 0, 0, err
				}
				h, err := core.Posterior(pp).Entropy()
				if err != nil {
					return 0, 0, err
				}
				post += h
			}
			n := float64(ds.Len())
			return vote / n, post / n, nil
		}
		row := PosteriorRow{Model: model}
		if row.VoteKnown, row.PosteriorKnown, err = eval(data.Test); err != nil {
			return nil, err
		}
		if row.VoteUnknown, row.PosteriorUnknown, err = eval(data.Unknown); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints A2's comparison.
func (r *PosteriorResult) Render() string {
	out := "Ablation A2 (DVFS): vote entropy vs averaged-posterior entropy\n"
	for _, row := range r.Rows {
		out += fmt.Sprintf("  %s vote entropy:      known %.3f, unknown %.3f (gap %.3f)\n",
			displayModel(row.Model), row.VoteKnown, row.VoteUnknown, row.VoteUnknown-row.VoteKnown)
		out += fmt.Sprintf("  %s posterior entropy: known %.3f, unknown %.3f (gap %.3f)\n",
			displayModel(row.Model), row.PosteriorKnown, row.PosteriorUnknown, row.PosteriorUnknown-row.PosteriorKnown)
	}
	return out
}

// DiversityResult is ablation A3: bagging diversity versus random-restart
// (deep-ensembles-style [8]) diversity for the LR ensemble on DVFS.
type DiversityResult struct {
	BaggingKnown, BaggingUnknown       float64
	RandomInitKnown, RandomInitUnknown float64
}

// AblationDiversity runs A3.
func AblationDiversity(cfg Config) (*DiversityResult, error) {
	cfg = cfg.normalized()
	data, err := cfg.dvfsData()
	if err != nil {
		return nil, fmt.Errorf("exp: ablation diversity: %w", err)
	}
	res := &DiversityResult{}
	for _, mode := range []string{"bootstrap", "random-init"} {
		d, err := cfg.train(data.Train, "lr", detector.WithDiversity(mode))
		if err != nil {
			return nil, err
		}
		rKnown, err := d.AssessDataset(data.Test)
		if err != nil {
			return nil, err
		}
		rUnknown, err := d.AssessDataset(data.Unknown)
		if err != nil {
			return nil, err
		}
		hKnown := linalg.Mean(detector.Entropies(rKnown))
		hUnknown := linalg.Mean(detector.Entropies(rUnknown))
		if mode == "bootstrap" {
			res.BaggingKnown, res.BaggingUnknown = hKnown, hUnknown
		} else {
			res.RandomInitKnown, res.RandomInitUnknown = hKnown, hUnknown
		}
	}
	return res, nil
}

// Render prints A3's comparison.
func (r *DiversityResult) Render() string {
	return "Ablation A3 (DVFS, LR): bagging vs random-restart diversity\n" +
		fmt.Sprintf("  Bagging:        known %.3f, unknown %.3f (gap %.3f)\n",
			r.BaggingKnown, r.BaggingUnknown, r.BaggingUnknown-r.BaggingKnown) +
		fmt.Sprintf("  Random restart: known %.3f, unknown %.3f (gap %.3f)\n",
			r.RandomInitKnown, r.RandomInitUnknown, r.RandomInitUnknown-r.RandomInitKnown)
}
