package exp

import (
	"fmt"

	"trusthmd/internal/metrics"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/linalg"
)

// FamilyRow summarises the uncertainty quality of one base-classifier
// family on the DVFS dataset: known-test accuracy, mean known/unknown vote
// entropy, and the AUC of entropy used as a zero-day detector (unknown =
// positive). AUC near 1 means entropy alone separates zero-days from known
// traffic; near 0.5 means the family's ensemble uncertainty is useless for
// screening — the axis on which the paper ranks RF > LR > SVM.
type FamilyRow struct {
	Model          string
	Accuracy       float64
	KnownEntropy   float64
	UnknownEntropy float64
	OODAUC         float64
}

// FamiliesResult is ablation A4 (extension): the model-family uncertainty
// study, covering the paper's three families plus Gaussian Naive Bayes and
// kNN from the Zhou et al. candidate list.
type FamiliesResult struct {
	Rows []FamilyRow
}

// A4Models is the family list of ablation A4, by detector registry name.
var A4Models = []string{"rf", "lr", "svm", "nb", "knn"}

// AblationFamilies runs A4 on the DVFS dataset.
func AblationFamilies(cfg Config) (*FamiliesResult, error) {
	cfg = cfg.normalized()
	data, err := cfg.dvfsData()
	if err != nil {
		return nil, fmt.Errorf("exp: ablation families: %w", err)
	}
	res := &FamiliesResult{}
	for _, model := range A4Models {
		var extra []detector.Option
		if model == "nb" || model == "knn" {
			// NB and kNN members are stable like SVMs; give them the same
			// random-subspace diversification as the linear ensemble.
			extra = append(extra, detector.WithMaxFeatures(0.45))
		}
		d, err := cfg.train(data.Train, model, extra...)
		if err != nil {
			return nil, fmt.Errorf("exp: ablation families %s: %w", model, err)
		}
		rKnown, err := d.AssessDataset(data.Test)
		if err != nil {
			return nil, err
		}
		rUnknown, err := d.AssessDataset(data.Unknown)
		if err != nil {
			return nil, err
		}
		hKnown := detector.Entropies(rKnown)
		hUnknown := detector.Entropies(rUnknown)
		rep, err := metrics.Score(data.Test.Y(), detector.Predictions(rKnown))
		if err != nil {
			return nil, err
		}

		// Entropy as an OOD score: label known 0, unknown 1.
		labels := make([]int, 0, len(hKnown)+len(hUnknown))
		scores := make([]float64, 0, cap(labels))
		for _, h := range hKnown {
			labels = append(labels, 0)
			scores = append(scores, h)
		}
		for _, h := range hUnknown {
			labels = append(labels, 1)
			scores = append(scores, h)
		}
		auc, err := metrics.AUC(labels, scores)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, FamilyRow{
			Model:          model,
			Accuracy:       rep.Accuracy,
			KnownEntropy:   linalg.Mean(hKnown),
			UnknownEntropy: linalg.Mean(hUnknown),
			OODAUC:         auc,
		})
	}
	return res, nil
}

// Render prints the family study table.
func (r *FamiliesResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			displayModel(row.Model),
			fmt.Sprintf("%.3f", row.Accuracy),
			fmt.Sprintf("%.3f", row.KnownEntropy),
			fmt.Sprintf("%.3f", row.UnknownEntropy),
			fmt.Sprintf("%.3f", row.OODAUC),
		})
	}
	return "Ablation A4 (DVFS): base-classifier family study\n" +
		table([]string{"Model", "Accuracy", "KnownH", "UnknownH", "OOD-AUC"}, rows)
}
