package exp

import (
	"strings"
	"testing"
)

// quickCfg is a scaled-down configuration for fast shape checks. The full
// Table I sizes are exercised by cmd/hmdbench and the benchmarks.
var quickCfg = Config{Seed: 11, Scale: 0.1, M: 15}

func TestTableIScaledCounts(t *testing.T) {
	res, err := TableI(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Samples <= 0 || row.Benign+row.Malware != row.Samples {
			t.Fatalf("inconsistent row %+v", row)
		}
		if row.Apps < 2 {
			t.Fatalf("row %+v has too few apps", row)
		}
	}
	if !strings.Contains(res.Render(), "Table I") {
		t.Fatal("render missing title")
	}
}

func TestTableIFullMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation")
	}
	res, err := TableI(Config{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"DVFS/Train": 2100, "DVFS/Test (Known)": 700, "DVFS/Unknown": 284,
		"HPC/Train": 44605, "HPC/Test (Known)": 6372, "HPC/Unknown": 12727,
	}
	for _, row := range res.Rows {
		key := row.Dataset + "/" + row.Split
		if row.Samples != want[key] {
			t.Fatalf("%s: %d samples, want %d", key, row.Samples, want[key])
		}
	}
}

func boxFor(t *testing.T, res *BoxplotResult, model string, split string) EntropySummary {
	t.Helper()
	for _, b := range res.Boxes {
		if b.Model == model && b.Split == split {
			return b
		}
	}
	t.Fatalf("no box for %v %s", model, split)
	return EntropySummary{}
}

func TestFig4Shape(t *testing.T) {
	res, err := Fig4(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Excluded) != 0 {
		t.Fatalf("no DVFS model should be excluded: %v", res.Excluded)
	}
	// The paper's core DVFS finding: unknown entropies exceed known for RF
	// (and LR), while SVM's gap is poor.
	for _, model := range []string{"rf", "lr"} {
		k := boxFor(t, res, model, "known")
		u := boxFor(t, res, model, "unknown")
		if u.Summary.Mean <= k.Summary.Mean {
			t.Fatalf("%v: unknown mean %.3f must exceed known %.3f", model, u.Summary.Mean, k.Summary.Mean)
		}
	}
	rfGap := boxFor(t, res, "rf", "unknown").Summary.Mean -
		boxFor(t, res, "rf", "known").Summary.Mean
	svmGap := boxFor(t, res, "svm", "unknown").Summary.Mean -
		boxFor(t, res, "svm", "known").Summary.Mean
	if svmGap >= rfGap {
		t.Fatalf("SVM gap %.3f should be poorer than RF gap %.3f", svmGap, rfGap)
	}
	if !strings.Contains(res.Render(), "Fig. 4") {
		t.Fatal("render missing title")
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// SVM must be excluded for non-convergence, as in the paper.
	if _, ok := res.Excluded["svm"]; !ok {
		t.Fatal("SVM should fail to converge on the HPC dataset")
	}
	// Known entropy is as high as unknown (within 35%): the class-overlap
	// signature of the HPC dataset.
	k := boxFor(t, res, "rf", "known")
	u := boxFor(t, res, "rf", "unknown")
	if k.Summary.Mean < 0.3 {
		t.Fatalf("HPC known entropy %.3f should be high", k.Summary.Mean)
	}
	if u.Summary.Mean > k.Summary.Mean*1.6 {
		t.Fatalf("HPC known %.3f and unknown %.3f entropies should be comparable", k.Summary.Mean, u.Summary.Mean)
	}
	if !strings.Contains(res.Render(), "Fig. 5") {
		t.Fatal("render missing title")
	}
}

func TestFig7aShape(t *testing.T) {
	res, err := Fig7a(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 6 {
		t.Fatalf("%d series, want 6 (3 models x 2 splits)", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 16 {
			t.Fatalf("%v-%s: %d thresholds, want 16", s.Model, s.Split, len(s.Points))
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].RejectedPct > s.Points[i-1].RejectedPct+1e-9 {
				t.Fatalf("%v-%s: rejection curve must be non-increasing", s.Model, s.Split)
			}
		}
	}
	// RF-unknown dominates RF-known at the paper's operating threshold.
	var rfKnown, rfUnknown RejectionSeries
	for _, s := range res.Series {
		if s.Model == "rf" {
			if s.Split == "known" {
				rfKnown = s
			} else {
				rfUnknown = s
			}
		}
	}
	idx04 := 8 // threshold 0.40
	if rfUnknown.Points[idx04].RejectedPct <= rfKnown.Points[idx04].RejectedPct+20 {
		t.Fatalf("RF at 0.40: unknown rejection %.1f%% must clearly exceed known %.1f%%",
			rfUnknown.Points[idx04].RejectedPct, rfKnown.Points[idx04].RejectedPct)
	}
	if !strings.Contains(res.Render(), "Fig. 7a") {
		t.Fatal("render missing title")
	}
}

func TestFig7bShape(t *testing.T) {
	res, err := Fig7b(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("%d series, want 2", len(res.Series))
	}
	var hpc F1Series
	for _, s := range res.Series {
		if s.Dataset == "HPC" {
			hpc = s
		}
	}
	// Rejecting more (lower threshold) must not hurt HPC F1: the uplift
	// the paper reports. Compare the strictest useful threshold to the
	// loosest.
	first, last := hpc.Points[1], hpc.Points[len(hpc.Points)-1]
	if first.F1 < last.F1-1e-9 {
		t.Fatalf("HPC F1 at strict threshold %.3f should be >= loose %.3f", first.F1, last.F1)
	}
	if !strings.Contains(res.Render(), "Fig. 7b") {
		t.Fatal("render missing title")
	}
}

func TestFig8SeparationContrast(t *testing.T) {
	dv, err := Fig8(quickCfg, "DVFS")
	if err != nil {
		t.Fatal(err)
	}
	hp, err := Fig8(quickCfg, "HPC")
	if err != nil {
		t.Fatal(err)
	}
	// The paper's qualitative contrast, made quantitative: DVFS classes
	// separate, HPC classes overlap.
	if dv.TrainSilhouette <= hp.TrainSilhouette {
		t.Fatalf("DVFS silhouette %.3f must exceed HPC %.3f", dv.TrainSilhouette, hp.TrainSilhouette)
	}
	if hp.TrainSilhouette > 0.25 {
		t.Fatalf("HPC silhouette %.3f should indicate overlap", hp.TrainSilhouette)
	}
	if len(dv.Points) != dv.SampledTrain+dv.SampledUnknown {
		t.Fatal("point count mismatch")
	}
	if _, err := Fig8(quickCfg, "bogus"); err == nil {
		t.Fatal("expected dataset error")
	}
	if !strings.Contains(dv.Render(), "Fig. 8") {
		t.Fatal("render missing title")
	}
}

func TestFig9aStabilises(t *testing.T) {
	res, err := Fig9a(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(Fig9aSizes) {
		t.Fatalf("%d points", len(res.Points))
	}
	// Unknown entropy exceeds known at every size >= 5.
	for _, p := range res.Points {
		if p.Members >= 5 && p.UnknownEntropy <= p.KnownEntropy {
			t.Fatalf("at %d members unknown %.3f <= known %.3f", p.Members, p.UnknownEntropy, p.KnownEntropy)
		}
	}
	// The estimate stabilises at some size well below the maximum (the
	// paper: ~20).
	if s := res.StableAfter(0.05); s > 50 {
		t.Fatalf("entropy should stabilise by 50 members, got %d", s)
	}
	if !strings.Contains(res.Render(), "Fig. 9a") {
		t.Fatal("render missing title")
	}
}

func TestFig9bShape(t *testing.T) {
	res, err := Fig9b(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Excluded["svm"]; !ok {
		t.Fatal("SVM should be excluded on HPC")
	}
	// Known and unknown curves track each other (the paper: rejected "in
	// the same fashion"). Compare RF curves at mid threshold.
	var rfKnown, rfUnknown RejectionSeries
	for _, s := range res.Series {
		if s.Model == "rf" {
			if s.Split == "known" {
				rfKnown = s
			} else {
				rfUnknown = s
			}
		}
	}
	mid := len(rfKnown.Points) / 2
	diff := rfUnknown.Points[mid].RejectedPct - rfKnown.Points[mid].RejectedPct
	if diff < -5 || diff > 40 {
		t.Fatalf("HPC known and unknown rejection should track: diff %.1f%%", diff)
	}
	if !strings.Contains(res.Render(), "Fig. 9b") {
		t.Fatal("render missing title")
	}
}

func TestHeadlines(t *testing.T) {
	res, err := Headlines(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// H1: unknown rejection clearly exceeds known at 0.40.
	if res.DVFSOperatingPoint.UnknownRejectedPct < 50 {
		t.Fatalf("H1: unknown rejection %.1f%% too low", res.DVFSOperatingPoint.UnknownRejectedPct)
	}
	if res.DVFSOperatingPoint.KnownRejectedPct > 25 {
		t.Fatalf("H1: known rejection %.1f%% too high", res.DVFSOperatingPoint.KnownRejectedPct)
	}
	// H2: rejection improves HPC F1.
	if res.HPCAfterReject.F1 < res.HPCBaseline.F1 {
		t.Fatalf("H2: rejection must not lower F1 (%.3f -> %.3f)", res.HPCBaseline.F1, res.HPCAfterReject.F1)
	}
	if res.HPCBaseline.Accuracy < 0.6 || res.HPCBaseline.Accuracy > 0.95 {
		t.Fatalf("H2: baseline accuracy %.3f outside the overlapping-classes regime", res.HPCBaseline.Accuracy)
	}
	if !strings.Contains(res.Render(), "H1") || !strings.Contains(res.Render(), "H2") {
		t.Fatal("render missing headline lines")
	}
}

func TestAblationPlatt(t *testing.T) {
	res, err := AblationPlatt(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Platt confidence barely drops on OOD; vote entropy rises clearly.
	confGap := res.MeanConfidenceKnown - res.MeanConfidenceUnknown
	entGap := res.MeanEntropyUnknown - res.MeanEntropyKnown
	if entGap <= 0 {
		t.Fatalf("vote entropy gap %.3f must be positive", entGap)
	}
	if confGap > 0.4 {
		t.Fatalf("platt confidence gap %.3f unexpectedly large", confGap)
	}
	if res.MeanConfidenceUnknown < 0.5 {
		t.Fatalf("platt confidence is max(p,1-p), got %.3f", res.MeanConfidenceUnknown)
	}
	if !strings.Contains(res.Render(), "A1") {
		t.Fatal("render missing title")
	}
}

func TestAblationPosterior(t *testing.T) {
	res, err := AblationPosterior(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.VoteUnknown <= row.VoteKnown {
			t.Fatalf("%v: vote entropy gap must be positive", row.Model)
		}
		if row.PosteriorUnknown <= row.PosteriorKnown {
			t.Fatalf("%v: posterior entropy gap must be positive", row.Model)
		}
	}
	// Fully grown trees: vote and posterior entropies coincide.
	rf := res.Rows[0]
	if diff := rf.VoteUnknown - rf.PosteriorUnknown; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("RF vote and posterior entropy should coincide for pure leaves: %v", diff)
	}
	if !strings.Contains(res.Render(), "A2") {
		t.Fatal("render missing title")
	}
}

func TestAblationDiversity(t *testing.T) {
	res, err := AblationDiversity(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaggingUnknown <= res.BaggingKnown {
		t.Fatal("bagging gap must be positive")
	}
	if !strings.Contains(res.Render(), "A3") {
		t.Fatal("render missing title")
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{}.normalized()
	if c.Scale != 1 || c.M != 25 {
		t.Fatalf("defaults %+v", c)
	}
	s := Config{Scale: 0.0001}.scaled(TableSizesForTest())
	if s.Train < 140 || s.Test < 70 || s.Unknown < 40 {
		t.Fatalf("floors not applied: %+v", s)
	}
}

func TestAblationFamilies(t *testing.T) {
	res, err := AblationFamilies(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(A4Models) {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(A4Models))
	}
	var rf, svm FamilyRow
	for _, row := range res.Rows {
		if row.Accuracy < 0.8 {
			t.Fatalf("%v: accuracy %.3f too low on DVFS", row.Model, row.Accuracy)
		}
		if row.OODAUC < 0.4 {
			t.Fatalf("%v: OOD AUC %.3f below chance", row.Model, row.OODAUC)
		}
		switch row.Model {
		case "rf":
			rf = row
		case "svm":
			svm = row
		}
	}
	// The paper's ranking on DVFS: RF uncertainty beats SVM uncertainty.
	if rf.OODAUC <= svm.OODAUC {
		t.Fatalf("RF OOD AUC %.3f should exceed SVM %.3f", rf.OODAUC, svm.OODAUC)
	}
	if !strings.Contains(res.Render(), "A4") {
		t.Fatal("render missing title")
	}
}

func TestAblationSources(t *testing.T) {
	res, err := AblationSources(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(res.Rows))
	}
	rows := map[string]SourceRow{}
	for _, row := range res.Rows {
		rows[row.Dataset+"/"+row.Split] = row
		if row.Epistemic < 0 || row.Aleatoric < 0 {
			t.Fatalf("negative component: %+v", row)
		}
		if diff := row.Total - row.Aleatoric - row.Epistemic; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("decomposition identity violated: %+v", row)
		}
	}
	// DVFS: zero-days add mostly *epistemic* uncertainty.
	if rows["DVFS/unknown"].Epistemic < 1.5*rows["DVFS/known"].Epistemic {
		t.Fatalf("DVFS epistemic should jump on unknowns: %.3f vs %.3f",
			rows["DVFS/unknown"].Epistemic, rows["DVFS/known"].Epistemic)
	}
	// HPC: epistemic barely moves between splits (unknowns are not OOD)
	// and aleatoric dominates both.
	hk, hu := rows["HPC/known"], rows["HPC/unknown"]
	if d := hu.Epistemic - hk.Epistemic; d > 0.15 || d < -0.15 {
		t.Fatalf("HPC epistemic should track across splits: %.3f vs %.3f", hk.Epistemic, hu.Epistemic)
	}
	if hk.Aleatoric <= hk.Epistemic {
		t.Fatalf("HPC known should be aleatoric-dominated: %+v", hk)
	}
	if !strings.Contains(res.Render(), "A5") {
		t.Fatal("render missing title")
	}
}

func TestEMGeneralization(t *testing.T) {
	res, err := EMGeneralization(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Accuracy < 0.85 {
			t.Fatalf("%v: EM accuracy %.3f too low", row.Model, row.Accuracy)
		}
		if row.UnknownEntropy <= row.KnownEntropy {
			t.Fatalf("%v: unknown entropy %.3f must exceed known %.3f",
				row.Model, row.UnknownEntropy, row.KnownEntropy)
		}
	}
	// The framework generalises: RF flags EM zero-days at 0.40.
	rf := res.Rows[0]
	if rf.OperatingPoint.UnknownRejectedPct <= rf.OperatingPoint.KnownRejectedPct+15 {
		t.Fatalf("EM RF operating point too weak: %+v", rf.OperatingPoint)
	}
	if !strings.Contains(res.Render(), "E1") {
		t.Fatal("render missing title")
	}
}

func TestGovernorSensitivity(t *testing.T) {
	res, err := GovernorSensitivity(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Accuracy < 0.85 {
			t.Fatalf("%v: accuracy %.3f", row.Policy, row.Accuracy)
		}
		if row.UnknownEntropy <= row.KnownEntropy {
			t.Fatalf("%v: unknown entropy %.3f must exceed known %.3f",
				row.Policy, row.UnknownEntropy, row.KnownEntropy)
		}
	}
	if !strings.Contains(res.Render(), "E2") {
		t.Fatal("render missing title")
	}
}
