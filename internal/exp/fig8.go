package exp

import (
	"fmt"
	"math/rand"

	"trusthmd/internal/gen"
	"trusthmd/internal/reduce"
	"trusthmd/internal/stats"
	"trusthmd/pkg/dataset"
	"trusthmd/pkg/linalg"
)

// TSNEPoint is one embedded sample of Fig. 8.
type TSNEPoint struct {
	X, Y  float64
	Label int    // dataset.Benign / dataset.Malware
	Group string // "train" or "unknown"
	App   string
}

// TSNEResult reproduces one panel of the paper's Fig. 8: a 2-D t-SNE
// embedding of the training data plus the unknown data, with a quantitative
// separation score. The paper reads the plots qualitatively — DVFS classes
// disjoint, HPC classes overlapping; we report the class silhouette of the
// embedded training points, which captures the same distinction
// numerically.
type TSNEResult struct {
	Dataset string
	Points  []TSNEPoint
	// TrainSilhouette is the benign-vs-malware silhouette of the embedded
	// training subsample: near 1 = disjoint classes, near 0 = overlap.
	TrainSilhouette float64
	// SampledTrain/SampledUnknown record the subsample sizes (exact t-SNE
	// is O(n^2); the embedding uses a stratified subsample).
	SampledTrain   int
	SampledUnknown int
}

// Fig8 embeds a stratified subsample of the chosen dataset ("DVFS" or
// "HPC") with t-SNE (perplexity 30) and scores class separation.
func Fig8(cfg Config, which string) (*TSNEResult, error) {
	cfg = cfg.normalized()
	var (
		data gen.Splits
		err  error
	)
	switch which {
	case "DVFS":
		data, err = cfg.dvfsData()
	case "HPC":
		data, err = cfg.hpcData()
	default:
		return nil, fmt.Errorf("exp: fig8: unknown dataset %q", which)
	}
	if err != nil {
		return nil, fmt.Errorf("exp: fig8 %s: %w", which, err)
	}

	const maxTrain, maxUnknown = 500, 150
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	train := subsample(data.Train, maxTrain, rng)
	unknown := subsample(data.Unknown, maxUnknown, rng)

	// Standardise features on the training subsample before embedding.
	scaler, err := dataset.FitScaler(train.X())
	if err != nil {
		return nil, err
	}
	all, err := train.Merge(unknown)
	if err != nil {
		return nil, err
	}
	Xs, err := scaler.Transform(all.X())
	if err != nil {
		return nil, err
	}
	emb, err := reduce.FitTSNE(Xs, reduce.TSNEConfig{
		Perplexity: 30, Iterations: 400, LearningRate: 100, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("exp: fig8 %s: tsne: %w", which, err)
	}

	res := &TSNEResult{Dataset: which, SampledTrain: train.Len(), SampledUnknown: unknown.Len()}
	var trainPts [][]float64
	var trainLabels []int
	for i := 0; i < all.Len(); i++ {
		s := all.At(i)
		group := "train"
		if i >= train.Len() {
			group = "unknown"
		}
		pt := TSNEPoint{X: emb.At(i, 0), Y: emb.At(i, 1), Label: s.Label, Group: group, App: s.App}
		res.Points = append(res.Points, pt)
		if group == "train" {
			trainPts = append(trainPts, emb.Row(i))
			trainLabels = append(trainLabels, s.Label)
		}
	}
	sil, err := stats.Silhouette(trainPts, trainLabels)
	if err != nil {
		return nil, err
	}
	res.TrainSilhouette = sil
	return res, nil
}

func subsample(d *dataset.Dataset, max int, rng *rand.Rand) *dataset.Dataset {
	if d.Len() <= max {
		return d
	}
	s, err := d.TakeN(max, rng)
	if err != nil { // cannot happen: max < Len
		panic(err)
	}
	return s
}

// Render summarises the embedding: per (group, class) centroid and spread,
// plus the separation silhouette. Full coordinates are available in Points
// (cmd/hmdbench -csv dumps them for plotting).
func (r *TSNEResult) Render() string {
	type key struct {
		group string
		label int
	}
	cells := map[key][]TSNEPoint{}
	for _, p := range r.Points {
		k := key{p.Group, p.Label}
		cells[k] = append(cells[k], p)
	}
	var rows [][]string
	for _, k := range []key{
		{"train", dataset.Benign}, {"train", dataset.Malware},
		{"unknown", dataset.Benign}, {"unknown", dataset.Malware},
	} {
		pts := cells[k]
		if len(pts) == 0 {
			continue
		}
		var mx, my stats.Moments
		for _, p := range pts {
			mx.Add(p.X)
			my.Add(p.Y)
		}
		class := "benign"
		if k.label == dataset.Malware {
			class = "malware"
		}
		rows = append(rows, []string{
			k.group, class, fmt.Sprint(len(pts)),
			fmt.Sprintf("(%.1f, %.1f)", mx.Mean(), my.Mean()),
			fmt.Sprintf("(%.1f, %.1f)", mx.Std(), my.Std()),
		})
	}
	out := fmt.Sprintf("Fig. 8 (%s): t-SNE embedding of train + unknown data (n=%d+%d)\n",
		r.Dataset, r.SampledTrain, r.SampledUnknown)
	out += table([]string{"Group", "Class", "N", "Centroid", "Std"}, rows)
	out += fmt.Sprintf("train benign-vs-malware silhouette: %.3f", r.TrainSilhouette)
	if r.TrainSilhouette > 0.3 {
		out += "  (disjoint classes)\n"
	} else {
		out += "  (overlapping classes)\n"
	}
	return out
}

// Dist2D is a convenience for tests: squared distance between two embedded
// points.
func Dist2D(a, b TSNEPoint) float64 {
	return linalg.SqDist([]float64{a.X, a.Y}, []float64{b.X, b.Y})
}
