// Package exp is the experiment harness: one runner per table and figure of
// the paper's evaluation (see DESIGN.md §5 for the experiment index). Each
// runner regenerates the data, trains the pipelines and returns a result
// struct whose Render method prints the same rows or series the paper
// reports. The cmd/hmdbench binary and the repository's benchmarks both
// drive these runners.
package exp

import (
	"fmt"
	"math"
	"strings"

	"trusthmd/internal/gen"
	"trusthmd/internal/hmd"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives all data generation and training.
	Seed int64
	// Scale multiplies the paper's Table I split sizes; 1.0 reproduces the
	// full-size experiment and smaller values give quick runs. Values <= 0
	// default to 1.0. Split sizes have a floor so tiny scales stay valid.
	Scale float64
	// M is the ensemble size (default 25).
	M int
	// Workers caps training parallelism; 0 means GOMAXPROCS.
	Workers int
}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.M <= 0 {
		c.M = 25
	}
	return c
}

func (c Config) scaled(s gen.Sizes) gen.Sizes {
	scale := func(n int, floor int) int {
		v := int(math.Round(float64(n) * c.Scale))
		if v < floor {
			return floor
		}
		return v
	}
	// Floors keep every application represented at least a few times.
	return gen.Sizes{
		Train:   scale(s.Train, 140),
		Test:    scale(s.Test, 70),
		Unknown: scale(s.Unknown, 40),
	}
}

// dvfsData generates the (possibly scaled) DVFS splits.
func (c Config) dvfsData() (gen.Splits, error) {
	return gen.DVFSWithSizes(c.Seed, c.scaled(gen.TableIDVFS))
}

// hpcData generates the (possibly scaled) HPC splits.
func (c Config) hpcData() (gen.Splits, error) {
	return gen.HPCWithSizes(c.Seed+1, c.scaled(gen.TableIHPC))
}

// pipelineConfig returns the per-model training configuration used across
// all experiments. These mirror the calibration recorded in DESIGN.md:
// random forests diversify through per-split feature sampling; logistic
// ensembles additionally use random feature subspaces (sklearn
// BaggingClassifier's max_features) because fully-converged linear members
// are otherwise nearly identical; SVMs train on plain bootstraps with a
// convergence check that trips on the overlapping HPC data.
func (c Config) pipelineConfig(model hmd.Model) hmd.Config {
	cfg := hmd.Config{Model: model, M: c.M, Seed: c.Seed + 1000*int64(model), Workers: c.Workers}
	switch model {
	case hmd.LogisticRegression:
		cfg.MaxFeatures = 0.45
	case hmd.SVM:
		cfg.SVMMaxObjective = 0.3
	}
	return cfg
}

// TableSizesForTest exposes the DVFS Table I sizes for white-box tests.
func TableSizesForTest() gen.Sizes { return gen.TableIDVFS }

// Models lists the base classifier families the paper evaluates.
var Models = []hmd.Model{hmd.RandomForest, hmd.LogisticRegression, hmd.SVM}

// table renders rows as fixed-width columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
