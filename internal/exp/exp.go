// Package exp is the experiment harness: one runner per table and figure of
// the paper's evaluation (see DESIGN.md §5 for the experiment index). Each
// runner regenerates the data, trains the pipelines and returns a result
// struct whose Render method prints the same rows or series the paper
// reports. The cmd/hmdbench binary and the repository's benchmarks both
// drive these runners.
package exp

import (
	"fmt"
	"math"
	"strings"

	"trusthmd/internal/gen"
	"trusthmd/pkg/dataset"
	"trusthmd/pkg/detector"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives all data generation and training.
	Seed int64
	// Scale multiplies the paper's Table I split sizes; 1.0 reproduces the
	// full-size experiment and smaller values give quick runs. Values <= 0
	// default to 1.0. Split sizes have a floor so tiny scales stay valid.
	Scale float64
	// M is the ensemble size (default 25).
	M int
	// Workers caps training parallelism; 0 means GOMAXPROCS.
	Workers int
}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.M <= 0 {
		c.M = 25
	}
	return c
}

func (c Config) scaled(s gen.Sizes) gen.Sizes {
	scale := func(n int, floor int) int {
		v := int(math.Round(float64(n) * c.Scale))
		if v < floor {
			return floor
		}
		return v
	}
	// Floors keep every application represented at least a few times.
	return gen.Sizes{
		Train:   scale(s.Train, 140),
		Test:    scale(s.Test, 70),
		Unknown: scale(s.Unknown, 40),
	}
}

// dvfsData generates the (possibly scaled) DVFS splits.
func (c Config) dvfsData() (gen.Splits, error) {
	return gen.DVFSWithSizes(c.Seed, c.scaled(gen.TableIDVFS))
}

// hpcData generates the (possibly scaled) HPC splits.
func (c Config) hpcData() (gen.Splits, error) {
	return gen.HPCWithSizes(c.Seed+1, c.scaled(gen.TableIHPC))
}

// modelSeedIndex preserves the historical per-family seed offsets (the
// seed formula used to be Seed + 1000*enumOrdinal), so the migration to
// registry names reproduces the exact ensembles of earlier runs.
var modelSeedIndex = map[string]int64{"rf": 0, "lr": 1, "svm": 2, "nb": 3, "knn": 4}

// detectorOpts returns the per-model training options used across all
// experiments. These mirror the calibration recorded in DESIGN.md: random
// forests diversify through per-split feature sampling; logistic ensembles
// additionally use random feature subspaces (sklearn BaggingClassifier's
// max_features) because fully-converged linear members are otherwise
// nearly identical; SVMs train on plain bootstraps with a convergence
// check that trips on the overlapping HPC data.
func (c Config) detectorOpts(model string) []detector.Option {
	opts := []detector.Option{
		detector.WithModel(model),
		detector.WithEnsembleSize(c.M),
		detector.WithSeed(c.Seed + 1000*modelSeedIndex[model]),
		detector.WithWorkers(c.Workers),
		detector.WithThreshold(HeadlineThreshold),
	}
	switch model {
	case "lr":
		opts = append(opts, detector.WithMaxFeatures(0.45))
	case "svm":
		opts = append(opts, detector.WithSVMMaxObjective(0.3))
	}
	return opts
}

// train builds a detector for one base-classifier family with the shared
// experiment calibration plus any experiment-specific extra options.
func (c Config) train(train *dataset.Dataset, model string, extra ...detector.Option) (*detector.Detector, error) {
	return detector.New(train, append(c.detectorOpts(model), extra...)...)
}

// TableSizesForTest exposes the DVFS Table I sizes for white-box tests.
func TableSizesForTest() gen.Sizes { return gen.TableIDVFS }

// Models lists the base classifier families the paper evaluates, by their
// detector registry names.
var Models = []string{"rf", "lr", "svm"}

// displayModel renders a registry name the way the paper's tables do.
func displayModel(name string) string { return strings.ToUpper(name) }

// table renders rows as fixed-width columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
