package exp

import (
	"fmt"

	"trusthmd/pkg/dataset"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/linalg"
)

// SizePoint is one x-position of Fig. 9a: mean entropy at a given ensemble
// size, for known and unknown data.
type SizePoint struct {
	Members        int
	KnownEntropy   float64
	UnknownEntropy float64
}

// SizeSweepResult reproduces Fig. 9a: average entropy versus the number of
// base classifiers in the RF ensemble on the DVFS dataset. The paper's
// reading: the estimate stabilises once the ensemble exceeds ~20 members,
// so more than 20 base classifiers adds overhead without better
// uncertainty.
type SizeSweepResult struct {
	Points []SizePoint
}

// Fig9aSizes are the ensemble sizes swept (the paper's x-axis, 0-100).
var Fig9aSizes = []int{1, 2, 5, 10, 15, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// Fig9a trains a single 100-member RF ensemble and evaluates entropy with
// truncated detector views, which is statistically identical to training
// each size separately under bagging (members are exchangeable) and far
// cheaper.
func Fig9a(cfg Config) (*SizeSweepResult, error) {
	cfg = cfg.normalized()
	data, err := cfg.dvfsData()
	if err != nil {
		return nil, fmt.Errorf("exp: fig9a: %w", err)
	}
	d, err := cfg.train(data.Train, "rf",
		detector.WithEnsembleSize(Fig9aSizes[len(Fig9aSizes)-1]))
	if err != nil {
		return nil, fmt.Errorf("exp: fig9a: %w", err)
	}

	meanEntropy := func(td *detector.Detector, ds *dataset.Dataset) (float64, error) {
		rs, err := td.AssessDataset(ds)
		if err != nil {
			return 0, err
		}
		return linalg.Mean(detector.Entropies(rs)), nil
	}

	res := &SizeSweepResult{}
	for _, m := range Fig9aSizes {
		td, err := d.Truncated(m)
		if err != nil {
			return nil, err
		}
		known, err := meanEntropy(td, data.Test)
		if err != nil {
			return nil, err
		}
		unknown, err := meanEntropy(td, data.Unknown)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, SizePoint{
			Members:        m,
			KnownEntropy:   known,
			UnknownEntropy: unknown,
		})
	}
	return res, nil
}

// StableAfter returns the smallest swept size after which the unknown-data
// mean entropy stays within tol of its final value — the paper's "stable
// beyond 20 members" observation, computed rather than eyeballed.
func (r *SizeSweepResult) StableAfter(tol float64) int {
	if len(r.Points) == 0 {
		return 0
	}
	final := r.Points[len(r.Points)-1].UnknownEntropy
	stable := r.Points[len(r.Points)-1].Members
	for i := len(r.Points) - 1; i >= 0; i-- {
		d := r.Points[i].UnknownEntropy - final
		if d < 0 {
			d = -d
		}
		if d > tol {
			break
		}
		stable = r.Points[i].Members
	}
	return stable
}

// Render prints the sweep as the two series of Fig. 9a.
func (r *SizeSweepResult) Render() string {
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprint(p.Members),
			fmt.Sprintf("%.3f", p.KnownEntropy),
			fmt.Sprintf("%.3f", p.UnknownEntropy),
		})
	}
	out := "Fig. 9a: average entropy vs number of base classifiers (DVFS, RF)\n" +
		table([]string{"Members", "RF-Known", "RF-Unknown"}, rows)
	out += fmt.Sprintf("entropy stable (tol 0.05) from %d members\n", r.StableAfter(0.05))
	return out
}
