package exp

import (
	"fmt"
	"math/rand"

	"trusthmd/internal/core"
	"trusthmd/internal/dvfs"
	"trusthmd/internal/feature"
	"trusthmd/internal/gen"
	"trusthmd/internal/metrics"
	"trusthmd/internal/workload"
	"trusthmd/pkg/dataset"
	"trusthmd/pkg/detector"
	"trusthmd/pkg/linalg"
)

// GovernorRow is one policy row of the E2 sensitivity study.
type GovernorRow struct {
	Policy         dvfs.Policy
	Accuracy       float64
	KnownEntropy   float64
	UnknownEntropy float64
	OperatingPoint core.OperatingPoint // at threshold 0.40
}

// GovernorResult is experiment E2 (extension): sensitivity of the DVFS HMD
// to the SoC's cpufreq governor policy. The telemetry an HMD sees is
// shaped by the power-management policy between the workload and the
// sensor; E2 retrains the RF pipeline under ondemand and conservative
// governors and compares detectability and zero-day separation. The
// substantive question: does the paper's approach survive a governor it
// was not designed around?
type GovernorResult struct {
	Rows []GovernorRow
}

// GovernorPolicies are the swept policies.
var GovernorPolicies = []dvfs.Policy{dvfs.Ondemand, dvfs.Conservative}

// GovernorSensitivity runs E2.
func GovernorSensitivity(cfg Config) (*GovernorResult, error) {
	cfg = cfg.normalized()
	sizes := cfg.scaled(TableSizesForTest())
	res := &GovernorResult{}
	for _, policy := range GovernorPolicies {
		splits, err := generateDVFSWithPolicy(cfg.Seed+3, sizes, policy)
		if err != nil {
			return nil, fmt.Errorf("exp: governor %v: %w", policy, err)
		}
		d, err := cfg.train(splits.train, "rf")
		if err != nil {
			return nil, fmt.Errorf("exp: governor %v: %w", policy, err)
		}
		rKnown, err := d.AssessDataset(splits.test)
		if err != nil {
			return nil, err
		}
		rUnknown, err := d.AssessDataset(splits.unknown)
		if err != nil {
			return nil, err
		}
		hKnown := detector.Entropies(rKnown)
		hUnknown := detector.Entropies(rUnknown)
		rep, err := metrics.Score(splits.test.Y(), detector.Predictions(rKnown))
		if err != nil {
			return nil, err
		}
		op, err := core.At(HeadlineThreshold, hKnown, hUnknown)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, GovernorRow{
			Policy:         policy,
			Accuracy:       rep.Accuracy,
			KnownEntropy:   linalg.Mean(hKnown),
			UnknownEntropy: linalg.Mean(hUnknown),
			OperatingPoint: op,
		})
	}
	return res, nil
}

type dvfsSplitSet struct {
	train, test, unknown *dataset.Dataset
}

// generateDVFSWithPolicy mirrors gen.DVFSWithSizes but under an explicit
// governor policy (gen's default generator is pinned to ondemand).
func generateDVFSWithPolicy(seed int64, sizes gen.Sizes, policy dvfs.Policy) (dvfsSplitSet, error) {
	simCfg := dvfs.DefaultConfig()
	simCfg.Policy = policy
	sim, err := dvfs.NewSimulator(simCfg)
	if err != nil {
		return dvfsSplitSet{}, err
	}
	var known, unknown []workload.DVFSBehavior
	for _, a := range workload.DVFSApps() {
		if a.Known {
			known = append(known, a)
		} else {
			unknown = append(unknown, a)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	dim := feature.DVFSDim(simCfg.Levels)

	build := func(apps []workload.DVFSBehavior, total int) (*dataset.Dataset, error) {
		alloc, err := workload.Allocate(total, len(apps))
		if err != nil {
			return nil, err
		}
		d := dataset.New(dim)
		for i, app := range apps {
			for k := 0; k < alloc[i]; k++ {
				trace, err := sim.Trace(app, rng)
				if err != nil {
					return nil, err
				}
				feats, err := feature.DVFSVector(trace, simCfg.Levels)
				if err != nil {
					return nil, err
				}
				if err := d.Add(dataset.Sample{Features: feats, Label: app.Label, App: app.Name}); err != nil {
					return nil, err
				}
			}
		}
		return d, nil
	}

	var out dvfsSplitSet
	if out.train, err = build(known, sizes.Train); err != nil {
		return dvfsSplitSet{}, err
	}
	if out.test, err = build(known, sizes.Test); err != nil {
		return dvfsSplitSet{}, err
	}
	if out.unknown, err = build(unknown, sizes.Unknown); err != nil {
		return dvfsSplitSet{}, err
	}
	return out, nil
}

// Render prints the E2 table.
func (r *GovernorResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Policy.String(),
			fmt.Sprintf("%.3f", row.Accuracy),
			fmt.Sprintf("%.3f", row.KnownEntropy),
			fmt.Sprintf("%.3f", row.UnknownEntropy),
			fmt.Sprintf("%.1f%%", row.OperatingPoint.KnownRejectedPct),
			fmt.Sprintf("%.1f%%", row.OperatingPoint.UnknownRejectedPct),
		})
	}
	return "Experiment E2 (extension): DVFS governor-policy sensitivity (RF)\n" +
		table([]string{"Governor", "Accuracy", "KnownH", "UnknownH", "rejK@0.40", "rejU@0.40"}, rows)
}
