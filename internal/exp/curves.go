package exp

import (
	"errors"
	"fmt"

	"trusthmd/internal/core"
	"trusthmd/internal/gen"
	"trusthmd/internal/hmd"
	"trusthmd/internal/ml/linear"
)

// RejectionSeries is one curve of Fig. 7a / Fig. 9b: rejected percentage
// versus entropy threshold for one (model, split) pair.
type RejectionSeries struct {
	Model  hmd.Model
	Split  string // "known" or "unknown"
	Points []core.SweepPoint
}

// CurvesResult reproduces Fig. 7a (DVFS) or Fig. 9b (HPC).
type CurvesResult struct {
	Dataset  string
	Series   []RejectionSeries
	Excluded map[hmd.Model]string
}

// Fig7a sweeps the entropy threshold from 0.00 to 0.75 in steps of 0.05 on
// the DVFS dataset and reports the percentage of known and unknown inputs
// rejected by RF, LR and SVM ensembles (the paper's Fig. 7a).
func Fig7a(cfg Config) (*CurvesResult, error) {
	cfg = cfg.normalized()
	data, err := cfg.dvfsData()
	if err != nil {
		return nil, fmt.Errorf("exp: fig7a: %w", err)
	}
	return rejectionCurves(cfg, "DVFS", data, 0.75)
}

// Fig9b is the HPC counterpart (the paper's Fig. 9b): thresholds 0.00-0.80,
// RF and LR only — SVM does not converge and lands in Excluded.
func Fig9b(cfg Config) (*CurvesResult, error) {
	cfg = cfg.normalized()
	data, err := cfg.hpcData()
	if err != nil {
		return nil, fmt.Errorf("exp: fig9b: %w", err)
	}
	return rejectionCurves(cfg, "HPC", data, 0.80)
}

func rejectionCurves(cfg Config, name string, data gen.Splits, maxThr float64) (*CurvesResult, error) {
	thresholds, err := core.Thresholds(0, maxThr, 0.05)
	if err != nil {
		return nil, err
	}
	res := &CurvesResult{Dataset: name, Excluded: map[hmd.Model]string{}}
	for _, model := range Models {
		p, err := hmd.Train(data.Train, cfg.pipelineConfig(model))
		if err != nil {
			var nc *linear.ErrNoConvergence
			if errors.As(err, &nc) {
				res.Excluded[model] = nc.Error()
				continue
			}
			return nil, fmt.Errorf("exp: %s %v: %w", name, model, err)
		}
		_, hKnown, err := p.AssessDataset(data.Test)
		if err != nil {
			return nil, err
		}
		_, hUnknown, err := p.AssessDataset(data.Unknown)
		if err != nil {
			return nil, err
		}
		for _, e := range []struct {
			split string
			h     []float64
		}{{"known", hKnown}, {"unknown", hUnknown}} {
			pts, err := core.RejectionCurve(e.h, thresholds)
			if err != nil {
				return nil, err
			}
			res.Series = append(res.Series, RejectionSeries{Model: model, Split: e.split, Points: pts})
		}
	}
	return res, nil
}

// Render prints one row per threshold with one column per series, matching
// the curves of the figure.
func (r *CurvesResult) Render() string {
	figure := "Fig. 7a"
	if r.Dataset == "HPC" {
		figure = "Fig. 9b"
	}
	if len(r.Series) == 0 {
		return figure + ": no series (all models excluded)\n"
	}
	header := []string{"Threshold"}
	for _, s := range r.Series {
		header = append(header, fmt.Sprintf("%v-%s", s.Model, s.Split))
	}
	var rows [][]string
	for i, pt := range r.Series[0].Points {
		row := []string{fmt.Sprintf("%.2f", pt.Threshold)}
		for _, s := range r.Series {
			row = append(row, fmt.Sprintf("%.1f%%", s.Points[i].RejectedPct))
		}
		rows = append(rows, row)
	}
	out := figure + ": rejected inputs vs entropy threshold, " + r.Dataset + " dataset\n" +
		table(header, rows)
	for model, reason := range r.Excluded {
		out += fmt.Sprintf("excluded %v: %s\n", model, reason)
	}
	return out
}

// F1Series is one curve of Fig. 7b: rejection-aware F1 versus threshold.
type F1Series struct {
	Model   hmd.Model
	Dataset string
	Points  []core.F1Point
}

// F1CurvesResult reproduces Fig. 7b.
type F1CurvesResult struct {
	Series []F1Series
}

// Fig7b sweeps the entropy threshold and reports the F1 score over accepted
// known-test predictions for the RF ensemble on both datasets (the paper's
// Fig. 7b: RF-DVFS and RF-HPC).
func Fig7b(cfg Config) (*F1CurvesResult, error) {
	cfg = cfg.normalized()
	thresholds, err := core.Thresholds(0.05, 0.85, 0.05)
	if err != nil {
		return nil, err
	}
	res := &F1CurvesResult{}
	for _, d := range []struct {
		name string
		load func() (gen.Splits, error)
	}{
		{"DVFS", cfg.dvfsData},
		{"HPC", cfg.hpcData},
	} {
		data, err := d.load()
		if err != nil {
			return nil, fmt.Errorf("exp: fig7b %s: %w", d.name, err)
		}
		p, err := hmd.Train(data.Train, cfg.pipelineConfig(hmd.RandomForest))
		if err != nil {
			return nil, fmt.Errorf("exp: fig7b %s: %w", d.name, err)
		}
		preds, entropies, err := p.AssessDataset(data.Test)
		if err != nil {
			return nil, err
		}
		pts, err := core.F1Curve(data.Test.Y(), preds, entropies, thresholds)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, F1Series{Model: hmd.RandomForest, Dataset: d.name, Points: pts})
	}
	return res, nil
}

// Render prints the F1 (and precision/recall/rejection) per threshold.
func (r *F1CurvesResult) Render() string {
	if len(r.Series) == 0 {
		return "Fig. 7b: no series\n"
	}
	header := []string{"Threshold"}
	for _, s := range r.Series {
		name := fmt.Sprintf("%v-%s", s.Model, s.Dataset)
		header = append(header, name+"-f1", name+"-rej")
	}
	var rows [][]string
	for i, pt := range r.Series[0].Points {
		row := []string{fmt.Sprintf("%.2f", pt.Threshold)}
		for _, s := range r.Series {
			row = append(row,
				fmt.Sprintf("%.3f", s.Points[i].F1),
				fmt.Sprintf("%.1f%%", s.Points[i].RejectedPct))
		}
		rows = append(rows, row)
	}
	return "Fig. 7b: f1-score vs entropy threshold (accepted known-test predictions)\n" +
		table(header, rows)
}
