package exp

import (
	"fmt"

	"trusthmd/internal/core"
	"trusthmd/internal/gen"
	"trusthmd/pkg/detector"
)

// RejectionSeries is one curve of Fig. 7a / Fig. 9b: rejected percentage
// versus entropy threshold for one (model, split) pair.
type RejectionSeries struct {
	Model  string
	Split  string // "known" or "unknown"
	Points []core.SweepPoint
}

// CurvesResult reproduces Fig. 7a (DVFS) or Fig. 9b (HPC).
type CurvesResult struct {
	Dataset  string
	Series   []RejectionSeries
	Excluded map[string]string
}

// Fig7a sweeps the entropy threshold from 0.00 to 0.75 in steps of 0.05 on
// the DVFS dataset and reports the percentage of known and unknown inputs
// rejected by RF, LR and SVM ensembles (the paper's Fig. 7a).
func Fig7a(cfg Config) (*CurvesResult, error) {
	cfg = cfg.normalized()
	data, err := cfg.dvfsData()
	if err != nil {
		return nil, fmt.Errorf("exp: fig7a: %w", err)
	}
	return rejectionCurves(cfg, "DVFS", data, 0.75)
}

// Fig9b is the HPC counterpart (the paper's Fig. 9b): thresholds 0.00-0.80,
// RF and LR only — SVM does not converge and lands in Excluded.
func Fig9b(cfg Config) (*CurvesResult, error) {
	cfg = cfg.normalized()
	data, err := cfg.hpcData()
	if err != nil {
		return nil, fmt.Errorf("exp: fig9b: %w", err)
	}
	return rejectionCurves(cfg, "HPC", data, 0.80)
}

func rejectionCurves(cfg Config, name string, data gen.Splits, maxThr float64) (*CurvesResult, error) {
	thresholds, err := core.Thresholds(0, maxThr, 0.05)
	if err != nil {
		return nil, err
	}
	res := &CurvesResult{Dataset: name, Excluded: map[string]string{}}
	for _, model := range Models {
		d, err := cfg.train(data.Train, model)
		if err != nil {
			if detector.IsNoConvergence(err) {
				res.Excluded[model] = err.Error()
				continue
			}
			return nil, fmt.Errorf("exp: %s %s: %w", name, model, err)
		}
		rKnown, err := d.AssessDataset(data.Test)
		if err != nil {
			return nil, err
		}
		rUnknown, err := d.AssessDataset(data.Unknown)
		if err != nil {
			return nil, err
		}
		for _, e := range []struct {
			split string
			h     []float64
		}{{"known", detector.Entropies(rKnown)}, {"unknown", detector.Entropies(rUnknown)}} {
			pts, err := core.RejectionCurve(e.h, thresholds)
			if err != nil {
				return nil, err
			}
			res.Series = append(res.Series, RejectionSeries{Model: model, Split: e.split, Points: pts})
		}
	}
	return res, nil
}

// Render prints one row per threshold with one column per series, matching
// the curves of the figure.
func (r *CurvesResult) Render() string {
	figure := "Fig. 7a"
	if r.Dataset == "HPC" {
		figure = "Fig. 9b"
	}
	if len(r.Series) == 0 {
		return figure + ": no series (all models excluded)\n"
	}
	header := []string{"Threshold"}
	for _, s := range r.Series {
		header = append(header, fmt.Sprintf("%s-%s", displayModel(s.Model), s.Split))
	}
	var rows [][]string
	for i, pt := range r.Series[0].Points {
		row := []string{fmt.Sprintf("%.2f", pt.Threshold)}
		for _, s := range r.Series {
			row = append(row, fmt.Sprintf("%.1f%%", s.Points[i].RejectedPct))
		}
		rows = append(rows, row)
	}
	out := figure + ": rejected inputs vs entropy threshold, " + r.Dataset + " dataset\n" +
		table(header, rows)
	for model, reason := range r.Excluded {
		out += fmt.Sprintf("excluded %s: %s\n", displayModel(model), reason)
	}
	return out
}

// F1Series is one curve of Fig. 7b: rejection-aware F1 versus threshold.
type F1Series struct {
	Model   string
	Dataset string
	Points  []core.F1Point
}

// F1CurvesResult reproduces Fig. 7b.
type F1CurvesResult struct {
	Series []F1Series
}

// Fig7b sweeps the entropy threshold and reports the F1 score over accepted
// known-test predictions for the RF ensemble on both datasets (the paper's
// Fig. 7b: RF-DVFS and RF-HPC).
func Fig7b(cfg Config) (*F1CurvesResult, error) {
	cfg = cfg.normalized()
	thresholds, err := core.Thresholds(0.05, 0.85, 0.05)
	if err != nil {
		return nil, err
	}
	res := &F1CurvesResult{}
	for _, d := range []struct {
		name string
		load func() (gen.Splits, error)
	}{
		{"DVFS", cfg.dvfsData},
		{"HPC", cfg.hpcData},
	} {
		data, err := d.load()
		if err != nil {
			return nil, fmt.Errorf("exp: fig7b %s: %w", d.name, err)
		}
		det, err := cfg.train(data.Train, "rf")
		if err != nil {
			return nil, fmt.Errorf("exp: fig7b %s: %w", d.name, err)
		}
		rs, err := det.AssessDataset(data.Test)
		if err != nil {
			return nil, err
		}
		pts, err := core.F1Curve(data.Test.Y(), detector.Predictions(rs), detector.Entropies(rs), thresholds)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, F1Series{Model: "rf", Dataset: d.name, Points: pts})
	}
	return res, nil
}

// Render prints the F1 (and precision/recall/rejection) per threshold.
func (r *F1CurvesResult) Render() string {
	if len(r.Series) == 0 {
		return "Fig. 7b: no series\n"
	}
	header := []string{"Threshold"}
	for _, s := range r.Series {
		name := fmt.Sprintf("%s-%s", displayModel(s.Model), s.Dataset)
		header = append(header, name+"-f1", name+"-rej")
	}
	var rows [][]string
	for i, pt := range r.Series[0].Points {
		row := []string{fmt.Sprintf("%.2f", pt.Threshold)}
		for _, s := range r.Series {
			row = append(row,
				fmt.Sprintf("%.3f", s.Points[i].F1),
				fmt.Sprintf("%.1f%%", s.Points[i].RejectedPct))
		}
		rows = append(rows, row)
	}
	return "Fig. 7b: f1-score vs entropy threshold (accepted known-test predictions)\n" +
		table(header, rows)
}
