package exp

import (
	"fmt"

	"trusthmd/internal/gen"
	"trusthmd/pkg/dataset"
)

// TableIResult reproduces the paper's Table I: the dataset taxonomy.
type TableIResult struct {
	Rows []TableIRow
}

// TableIRow is one dataset split line of Table I.
type TableIRow struct {
	Dataset string
	Split   string
	Samples int
	Benign  int
	Malware int
	Apps    int
}

// TableI regenerates both datasets and tabulates their split sizes. At
// Scale 1.0 the sample counts equal the paper's:
// DVFS 2100/700/284, HPC 44605/6372/12727.
func TableI(cfg Config) (*TableIResult, error) {
	cfg = cfg.normalized()
	dvfs, err := cfg.dvfsData()
	if err != nil {
		return nil, fmt.Errorf("exp: table I: %w", err)
	}
	hpc, err := cfg.hpcData()
	if err != nil {
		return nil, fmt.Errorf("exp: table I: %w", err)
	}
	var res TableIResult
	add := func(name string, s gen.Splits) {
		for _, e := range []struct {
			split string
			d     *dataset.Dataset
		}{{"Train", s.Train}, {"Test (Known)", s.Test}, {"Unknown", s.Unknown}} {
			b, m := e.d.ClassCounts()
			res.Rows = append(res.Rows, TableIRow{
				Dataset: name,
				Split:   e.split,
				Samples: e.d.Len(),
				Benign:  b,
				Malware: m,
				Apps:    len(e.d.Apps()),
			})
		}
	}
	add("DVFS", dvfs)
	add("HPC", hpc)
	return &res, nil
}

// Render prints the table in the paper's layout (plus class/app columns).
func (r *TableIResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Dataset, row.Split,
			fmt.Sprint(row.Samples), fmt.Sprint(row.Benign), fmt.Sprint(row.Malware), fmt.Sprint(row.Apps),
		})
	}
	return "Table I: dataset taxonomy\n" +
		table([]string{"Dataset", "Split", "# of Samples", "Benign", "Malware", "Apps"}, rows)
}
