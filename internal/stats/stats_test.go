package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEntropyUniformBinary(t *testing.T) {
	h, err := Entropy([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-1) > 1e-12 {
		t.Fatalf("H(0.5,0.5)=%v, want 1 bit", h)
	}
}

func TestEntropyDegenerate(t *testing.T) {
	h, err := Entropy([]float64{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Fatalf("H(1,0,0)=%v, want 0", h)
	}
}

func TestEntropyRenormalises(t *testing.T) {
	h1, _ := Entropy([]float64{1, 1})
	h2, _ := Entropy([]float64{10, 10})
	if math.Abs(h1-h2) > 1e-12 {
		t.Fatalf("entropy must be scale invariant: %v vs %v", h1, h2)
	}
}

func TestEntropyErrors(t *testing.T) {
	if _, err := Entropy([]float64{-0.1, 1.1}); err == nil {
		t.Fatal("expected error for negative mass")
	}
	if _, err := Entropy([]float64{0, 0}); err == nil {
		t.Fatal("expected error for zero distribution")
	}
	if _, err := Entropy([]float64{math.NaN()}); err == nil {
		t.Fatal("expected error for NaN")
	}
}

func TestEntropyBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(8)
		p := make([]float64, k)
		for i := range p {
			p[i] = rng.Float64()
		}
		h, err := Entropy(p)
		if err != nil {
			return false
		}
		return h >= 0 && h <= math.Log2(float64(k))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountEntropy(t *testing.T) {
	h, err := CountEntropy([]int{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-1) > 1e-12 {
		t.Fatalf("got %v", h)
	}
	if _, err := CountEntropy([]int{-1, 2}); err == nil {
		t.Fatal("expected error for negative count")
	}
}

func TestBinaryEntropy(t *testing.T) {
	for _, p := range []float64{0, 1} {
		if h, err := BinaryEntropy(p); err != nil || h != 0 {
			t.Fatalf("H(%v)=%v err=%v", p, h, err)
		}
	}
	h, err := BinaryEntropy(0.5)
	if err != nil || math.Abs(h-1) > 1e-12 {
		t.Fatalf("H(0.5)=%v err=%v", h, err)
	}
	if _, err := BinaryEntropy(1.5); err == nil {
		t.Fatal("expected range error")
	}
	// Symmetry property: H(p) == H(1-p).
	f := func(u float64) bool {
		p := math.Abs(math.Mod(u, 1))
		a, err1 := BinaryEntropy(p)
		b, err2 := BinaryEntropy(1 - p)
		return err1 == nil && err2 == nil && math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	med, err := Quantile(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-2.5) > 1e-12 {
		t.Fatalf("median=%v, want 2.5", med)
	}
	if xs[0] != 4 {
		t.Fatal("Quantile must not mutate input")
	}
	v, _ := Quantile([]float64{7}, 0.9)
	if v != 7 {
		t.Fatalf("single-element quantile=%v", v)
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Fatal("expected range error")
	}
	min, _ := Quantile(xs, 0)
	max, _ := Quantile(xs, 1)
	if min != 1 || max != 4 {
		t.Fatalf("extremes %v %v", min, max)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 || s.N != 5 {
		t.Fatalf("summary %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	if _, err := Summarize(nil); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestSummarizeOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max &&
			s.Mean >= s.Min && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMoments(t *testing.T) {
	var m Moments
	if m.Mean() != 0 || m.Variance() != 0 || m.N() != 0 {
		t.Fatal("zero value not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 || math.Abs(m.Mean()-5) > 1e-12 {
		t.Fatalf("mean=%v n=%d", m.Mean(), m.N())
	}
	// Population variance is 4; sample variance is 32/7.
	if math.Abs(m.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("variance=%v", m.Variance())
	}
	if math.Abs(m.Std()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("std=%v", m.Std())
	}
}

func TestMomentsMatchesBatchProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		xs := make([]float64, n)
		var m Moments
		var sum float64
		for i := range xs {
			xs[i] = rng.NormFloat64() * 5
			sum += xs[i]
			m.Add(xs[i])
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			d := x - mean
			ss += d * d
		}
		return math.Abs(m.Mean()-mean) < 1e-9 && math.Abs(m.Variance()-ss/float64(n-1)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 9.99, 10, -1} {
		h.Observe(x)
	}
	if h.Total() != 6 {
		t.Fatalf("total=%d", h.Total())
	}
	below, above := h.OutOfRange()
	if below != 1 || above != 1 {
		t.Fatalf("out of range %d %d", below, above)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts %v", h.Counts)
	}
	p := h.Normalized()
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-4.0/6) > 1e-12 {
		t.Fatalf("normalized mass %v", sum)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("expected bins error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("expected range error")
	}
	h, _ := NewHistogram(0, 1, 2)
	if p := h.Normalized(); p[0] != 0 || p[1] != 0 {
		t.Fatal("empty histogram should normalise to zeros")
	}
}

func TestAutocorrelation(t *testing.T) {
	// Alternating series has lag-1 autocorrelation near -1.
	xs := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	ac, err := Autocorrelation(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ac[0] != 1 {
		t.Fatalf("lag0=%v", ac[0])
	}
	if ac[1] > -0.8 {
		t.Fatalf("lag1=%v, want near -1", ac[1])
	}
	// Constant series.
	cc, err := Autocorrelation([]float64{3, 3, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cc[0] != 1 || cc[1] != 0 {
		t.Fatalf("constant acf %v", cc)
	}
	if _, err := Autocorrelation(nil, 1); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := Autocorrelation(xs, -1); err == nil {
		t.Fatal("expected maxLag error")
	}
	// maxLag clamping.
	short, err := Autocorrelation([]float64{1, 2}, 10)
	if err != nil || len(short) != 2 {
		t.Fatalf("clamped acf len=%d err=%v", len(short), err)
	}
}

func TestSilhouetteSeparated(t *testing.T) {
	X := [][]float64{{0, 0}, {0.1, 0}, {0, 0.1}, {10, 10}, {10.1, 10}, {10, 10.1}}
	y := []int{0, 0, 0, 1, 1, 1}
	s, err := Silhouette(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.9 {
		t.Fatalf("silhouette=%v, want near 1 for separated clusters", s)
	}
}

func TestSilhouetteOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var X [][]float64
	var y []int
	for i := 0; i < 100; i++ {
		X = append(X, []float64{rng.NormFloat64(), rng.NormFloat64()})
		y = append(y, i%2)
	}
	s, err := Silhouette(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s) > 0.15 {
		t.Fatalf("silhouette=%v, want near 0 for identical distributions", s)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	if _, err := Silhouette(nil, nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := Silhouette([][]float64{{1}}, []int{0, 1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := Silhouette([][]float64{{1}, {2}}, []int{0, 0}); err == nil {
		t.Fatal("expected single-cluster error")
	}
}

func TestSilhouetteSingletonCluster(t *testing.T) {
	X := [][]float64{{0, 0}, {0.1, 0}, {10, 10}}
	y := []int{0, 0, 1}
	if _, err := Silhouette(X, y); err != nil {
		t.Fatalf("singleton cluster should be allowed: %v", err)
	}
}

func TestSilhouetteRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		X := make([][]float64, n)
		y := make([]int, n)
		for i := range X {
			X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			y[i] = rng.Intn(3)
		}
		y[0], y[1] = 0, 1 // guarantee two clusters
		s, err := Silhouette(X, y)
		if err != nil {
			return false
		}
		return s >= -1-1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
