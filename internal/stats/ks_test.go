package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKSTestSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 400)
	b := make([]float64, 400)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	res, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.01 {
		t.Fatalf("same distribution rejected: p=%v stat=%v", res.PValue, res.Statistic)
	}
	if res.Statistic > 0.15 {
		t.Fatalf("statistic %v too large for identical distributions", res.Statistic)
	}
}

func TestKSTestShiftedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, 300)
	b := make([]float64, 300)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 1.5
	}
	res, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-6 {
		t.Fatalf("shifted distribution not detected: p=%v", res.PValue)
	}
	if res.Statistic < 0.4 {
		t.Fatalf("statistic %v too small for a 1.5-sigma shift", res.Statistic)
	}
}

func TestKSTestDisjointSupports(t *testing.T) {
	a := []float64{0, 1, 2}
	b := []float64{10, 11, 12}
	res, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic != 1 {
		t.Fatalf("disjoint supports should give statistic 1, got %v", res.Statistic)
	}
}

func TestKSTestErrors(t *testing.T) {
	if _, err := KSTest(nil, []float64{1}); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := KSTest([]float64{1}, nil); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestKSStatisticRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 1+rng.Intn(50))
		b := make([]float64, 1+rng.Intn(50))
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64() * 3
		}
		res, err := KSTest(a, b)
		if err != nil {
			return false
		}
		return res.Statistic >= 0 && res.Statistic <= 1 && res.PValue >= 0 && res.PValue <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKSSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 5+rng.Intn(30))
		b := make([]float64, 5+rng.Intn(30))
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64() + 0.5
		}
		r1, err1 := KSTest(a, b)
		r2, err2 := KSTest(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Statistic == r2.Statistic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKSTiedSamplesNoSpuriousGap(t *testing.T) {
	// Heavily tied samples drawn from the same distribution (many exact
	// zeros) must not produce a large statistic.
	a := make([]float64, 160)
	b := make([]float64, 12)
	for i := 120; i < 160; i++ {
		a[i] = 0.1 + float64(i-120)*0.01
	}
	res, err := KSTest(a, b) // b is all zeros; a is 75% zeros
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic > 0.3 {
		t.Fatalf("tied-sample statistic %v too large", res.Statistic)
	}
	if res.PValue < 0.05 {
		t.Fatalf("tied same-ish samples rejected: p=%v", res.PValue)
	}
}
