// Package stats supplies the statistical primitives used by trusthmd: Shannon
// entropy, histograms, quantiles and box-plot summaries, running moments,
// silhouette scores, and autocorrelation. All entropies are reported in bits
// (log base 2) so that binary vote entropy lies in [0, 1], matching the
// threshold axes of the paper's Figs. 7 and 9.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty reports an operation on an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Entropy returns the Shannon entropy, in bits, of the probability
// distribution p. Entries must be non-negative; zero entries contribute
// nothing. The distribution need not be exactly normalised — it is
// renormalised internally — but an all-zero distribution is an error.
func Entropy(p []float64) (float64, error) {
	var total float64
	for i, v := range p {
		if v < 0 || math.IsNaN(v) {
			return 0, fmt.Errorf("stats: entropy: p[%d]=%v is not a valid probability mass", i, v)
		}
		total += v
	}
	if total == 0 {
		return 0, fmt.Errorf("stats: entropy: distribution sums to zero: %w", ErrEmpty)
	}
	var h float64
	for _, v := range p {
		if v == 0 {
			continue
		}
		q := v / total
		h -= q * math.Log2(q)
	}
	if h < 0 { // guard tiny negative round-off
		h = 0
	}
	return h, nil
}

// CountEntropy returns the Shannon entropy, in bits, of a frequency
// distribution given as integer counts (e.g. ensemble votes per class).
func CountEntropy(counts []int) (float64, error) {
	// Allocation-free unrolling of Entropy over float64(counts): the same
	// total/term accumulation order, so the result is bit-identical, and
	// the assessment hot path can call it per sample without garbage.
	var total float64
	for i, c := range counts {
		if c < 0 {
			return 0, fmt.Errorf("stats: count entropy: negative count %d at %d", c, i)
		}
		total += float64(c)
	}
	if total == 0 {
		return 0, fmt.Errorf("stats: entropy: distribution sums to zero: %w", ErrEmpty)
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		q := float64(c) / total
		h -= q * math.Log2(q)
	}
	if h < 0 { // guard tiny negative round-off
		h = 0
	}
	return h, nil
}

// BinaryEntropy returns the entropy, in bits, of a Bernoulli(p)
// distribution. p outside [0,1] is an error.
func BinaryEntropy(p float64) (float64, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: binary entropy: p=%v outside [0,1]", p)
	}
	if p == 0 || p == 1 {
		return 0, nil
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p), nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (the same scheme as numpy's
// default). xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// FiveNumber is a box-plot summary: minimum, lower quartile, median, upper
// quartile and maximum, plus the mean and count for convenience.
type FiveNumber struct {
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
	N                        int
}

// Summarize computes the five-number summary of xs.
func Summarize(xs []float64) (FiveNumber, error) {
	if len(xs) == 0 {
		return FiveNumber{}, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		v, _ := Quantile(s, p)
		return v
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return FiveNumber{
		Min:    s[0],
		Q1:     q(0.25),
		Median: q(0.5),
		Q3:     q(0.75),
		Max:    s[len(s)-1],
		Mean:   sum / float64(len(s)),
		N:      len(s),
	}, nil
}

// String renders the summary in a compact fixed layout used by the
// experiment harness.
func (f FiveNumber) String() string {
	return fmt.Sprintf("n=%d min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f mean=%.3f",
		f.N, f.Min, f.Q1, f.Median, f.Q3, f.Max, f.Mean)
}

// Moments accumulates running mean and variance via Welford's algorithm.
// The zero value is ready to use.
type Moments struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (m *Moments) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of samples folded in.
func (m *Moments) N() int { return m.n }

// Mean returns the running mean (0 before any samples).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the sample variance (denominator n-1), or 0 with fewer
// than two samples.
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// Std returns the sample standard deviation.
func (m *Moments) Std() float64 { return math.Sqrt(m.Variance()) }

// Histogram is a fixed-width binning of scalar observations over [Min, Max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	total    int
	below    int
	above    int
}

// NewHistogram creates a histogram with bins equal-width bins over
// [min, max). Values below min or at/above max are tallied separately in
// the outermost bins' overflow counters but still count toward Total.
func NewHistogram(min, max float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs >=1 bin, got %d", bins)
	}
	if !(min < max) {
		return nil, fmt.Errorf("stats: histogram range [%v,%v) is empty", min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}, nil
}

// Observe adds x to the histogram.
func (h *Histogram) Observe(x float64) {
	h.total++
	switch {
	case x < h.Min:
		h.below++
	case x >= h.Max:
		h.above++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // float edge case at the upper boundary
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// OutOfRange returns the counts of observations below Min and at/above Max.
func (h *Histogram) OutOfRange() (below, above int) { return h.below, h.above }

// Normalized returns the in-range bin masses as probabilities summing to
// (in-range count)/Total. A histogram with no observations returns zeros.
func (h *Histogram) Normalized() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	inv := 1 / float64(h.total)
	for i, c := range h.Counts {
		out[i] = float64(c) * inv
	}
	return out
}

// Autocorrelation returns the lag-k sample autocorrelation of xs for
// k = 0..maxLag. Constant series yield zeros beyond lag 0 (and 1 at lag 0
// by convention).
func Autocorrelation(xs []float64, maxLag int) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if maxLag < 0 {
		return nil, fmt.Errorf("stats: negative maxLag %d", maxLag)
	}
	if maxLag >= len(xs) {
		maxLag = len(xs) - 1
	}
	var mean float64
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	var denom float64
	for _, v := range xs {
		d := v - mean
		denom += d * d
	}
	out := make([]float64, maxLag+1)
	out[0] = 1
	if denom == 0 {
		return out, nil
	}
	for k := 1; k <= maxLag; k++ {
		var num float64
		for i := 0; i+k < len(xs); i++ {
			num += (xs[i] - mean) * (xs[i+k] - mean)
		}
		out[k] = num / denom
	}
	return out, nil
}
