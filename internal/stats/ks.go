package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSResult holds a two-sample Kolmogorov-Smirnov comparison.
type KSResult struct {
	// Statistic is the maximum distance between the empirical CDFs.
	Statistic float64
	// PValue is the asymptotic significance of the statistic (small values
	// reject "same distribution").
	PValue float64
}

// KSTest runs the two-sample Kolmogorov-Smirnov test. It is used by the
// online drift monitor to compare the entropy distribution of recent
// predictions against the training-time baseline: a significant shift in
// predictive-entropy distribution is the earliest sign that the deployed
// HMD is seeing workloads it was not trained on.
func KSTest(a, b []float64) (KSResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{}, fmt.Errorf("stats: ks test needs two non-empty samples (%d, %d): %w", len(a), len(b), ErrEmpty)
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)

	// Walk the merged order, consuming whole tie groups on both sides
	// before comparing the CDFs — evaluating mid-tie would report spurious
	// gaps for heavily tied samples (e.g. many exact-zero entropies).
	var d float64
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		va, vb := as[i], bs[j]
		v := math.Min(va, vb)
		for i < len(as) && as[i] == v {
			i++
		}
		for j < len(bs) && bs[j] == v {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}

	ne := float64(len(as)) * float64(len(bs)) / float64(len(as)+len(bs))
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{Statistic: d, PValue: ksProb(lambda)}, nil
}

// ksProb is the asymptotic Kolmogorov distribution tail Q_KS(lambda)
// (Numerical Recipes §14.3).
func ksProb(lambda float64) float64 {
	if lambda < 1e-12 {
		return 1
	}
	var sum float64
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * 2 * math.Exp(-2*lambda*lambda*float64(j*j))
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}
