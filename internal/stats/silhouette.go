package stats

import (
	"fmt"
	"math"
)

// Silhouette returns the mean silhouette coefficient of the points X (one
// point per row) under the labelling y. The silhouette of a point is
// (b-a)/max(a,b) where a is its mean intra-cluster distance and b the mean
// distance to the nearest other cluster; the mean over all points lies in
// [-1, 1]. Values near 1 indicate well-separated clusters (the paper's DVFS
// latent space), values near 0 indicate overlapping clusters (the HPC
// latent space).
//
// Points in singleton clusters contribute 0, following the usual
// convention. At least two distinct labels are required.
func Silhouette(X [][]float64, y []int) (float64, error) {
	if len(X) == 0 {
		return 0, ErrEmpty
	}
	if len(X) != len(y) {
		return 0, fmt.Errorf("stats: silhouette: %d points but %d labels", len(X), len(y))
	}
	clusters := map[int][]int{}
	for i, lab := range y {
		clusters[lab] = append(clusters[lab], i)
	}
	if len(clusters) < 2 {
		return 0, fmt.Errorf("stats: silhouette needs >=2 clusters, got %d", len(clusters))
	}

	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}

	var total float64
	for i := range X {
		own := clusters[y[i]]
		if len(own) == 1 {
			continue // silhouette 0 by convention
		}
		var a float64
		for _, j := range own {
			if j != i {
				a += dist(X[i], X[j])
			}
		}
		a /= float64(len(own) - 1)

		b := math.Inf(1)
		for lab, members := range clusters {
			if lab == y[i] {
				continue
			}
			var d float64
			for _, j := range members {
				d += dist(X[i], X[j])
			}
			d /= float64(len(members))
			if d < b {
				b = d
			}
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
	}
	return total / float64(len(X)), nil
}
