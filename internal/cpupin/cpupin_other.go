//go:build !linux

package cpupin

// PinThread is a no-op off Linux: only the Linux syscall surface is
// wired, and affinity is a best-effort locality discipline everywhere.
func PinThread(int) {}
