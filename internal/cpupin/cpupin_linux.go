//go:build linux

// Package cpupin pins OS threads to CPU cores — the shared cache-locality
// discipline of the serving layer's replica flushers and the verdict
// store's group-commit flusher. Pinning is always best-effort: failures
// and out-of-range CPUs are ignored, never surfaced.
package cpupin

import (
	"runtime"
	"syscall"
	"unsafe"
)

// PinThread restricts the calling OS thread to a single CPU via
// sched_setaffinity(2). The caller must have locked its goroutine to the
// thread (runtime.LockOSThread) first, or the mask lands on whichever
// thread happens to run the call. Out-of-range CPUs and syscall failures
// are ignored: affinity is a cache-locality discipline, never a
// correctness requirement, and a daemon in a restricted sandbox (seccomp,
// cpuset) must keep serving unpinned rather than fail.
func PinThread(cpu int) {
	if cpu < 0 || cpu >= runtime.NumCPU() || cpu >= len(cpuSet{})*64 {
		return
	}
	var mask cpuSet
	mask[cpu/64] = 1 << (uint(cpu) % 64)
	_, _, _ = syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, // 0 = the calling thread
		uintptr(unsafe.Sizeof(mask)),
		uintptr(unsafe.Pointer(&mask[0])))
}

// cpuSet mirrors the kernel's cpu_set_t: a 1024-bit CPU mask.
type cpuSet [16]uint64
