package tree

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"trusthmd/pkg/linalg"
)

// randomFitted fits a tree with randomized shape controls on randomized
// data, returning the tree and a pool of probe inputs (training rows plus
// perturbed variants, so probes land both on and between split
// thresholds).
func randomFitted(t *testing.T, rng *rand.Rand) (*Tree, [][]float64) {
	t.Helper()
	n := 20 + rng.Intn(200)
	d := 1 + rng.Intn(12)
	classes := 2 + rng.Intn(3)
	X := linalg.New(n, d)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			// Coarse quantization forces duplicated feature values, the
			// edge case split scanning and traversal must agree on.
			X.Set(i, j, float64(rng.Intn(9))/2)
		}
		y[i] = rng.Intn(classes)
	}
	cfg := Config{
		MaxDepth:    rng.Intn(8), // 0 = unlimited
		MinLeaf:     1 + rng.Intn(3),
		MaxFeatures: rng.Intn(d+1) - 1, // -1 = sqrt(d), 0 = all
		Criterion:   Criterion(rng.Intn(2)),
		Seed:        rng.Int63(),
	}
	tr := New(cfg)
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	probes := make([][]float64, 0, 2*n)
	for i := 0; i < n; i++ {
		probes = append(probes, X.RowCopy(i))
		p := X.RowCopy(i)
		for j := range p {
			p[j] += (rng.Float64() - 0.5) * 0.7
		}
		probes = append(probes, p)
	}
	return tr, probes
}

// TestFlatMatchesPointerWalk is the flattening property test: on
// randomized fitted trees, the packed-slab traversal (Predict,
// PredictProba, PredictBatch) must be bit-identical to the original
// pointer-node walk for every probe.
func TestFlatMatchesPointerWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 30; round++ {
		tr, probes := randomFitted(t, rng)
		if tr.flat == nil {
			t.Fatalf("round %d: fitted tree was not flattened", round)
		}
		X := linalg.MustFromRows(probes)
		batch := make([]int, len(probes))
		tr.PredictBatch(X, batch)
		for pi, x := range probes {
			wantCounts := tr.leafCountsPtr(x)
			wantLabel := majorityLabel(wantCounts)
			if got := tr.Predict(x); got != wantLabel {
				t.Fatalf("round %d probe %d: flat Predict %d, pointer walk %d", round, pi, got, wantLabel)
			}
			if batch[pi] != wantLabel {
				t.Fatalf("round %d probe %d: PredictBatch %d, pointer walk %d", round, pi, batch[pi], wantLabel)
			}
			gotCounts := tr.leafCountsFlat(x)
			if len(gotCounts) != len(wantCounts) {
				t.Fatalf("round %d probe %d: flat counts %v, pointer counts %v", round, pi, gotCounts, wantCounts)
			}
			for c := range wantCounts {
				if gotCounts[c] != wantCounts[c] {
					t.Fatalf("round %d probe %d: flat counts %v, pointer counts %v", round, pi, gotCounts, wantCounts)
				}
			}
		}
	}
}

// TestFlatRebuiltAfterGobDecode asserts the wire format stays pointer
// shaped while decoded trees immediately serve from a rebuilt flat slab,
// with bit-identical predictions.
func TestFlatRebuiltAfterGobDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr, probes := randomFitted(t, rng)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(tr); err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.flat == nil {
		t.Fatal("decoded tree was not flattened")
	}
	if len(back.flat) != len(tr.flat) {
		t.Fatalf("decoded slab has %d nodes, original %d", len(back.flat), len(tr.flat))
	}
	for pi, x := range probes {
		if got, want := back.Predict(x), tr.Predict(x); got != want {
			t.Fatalf("probe %d: decoded Predict %d, original %d", pi, got, want)
		}
		gp, wp := back.PredictProba(x), tr.PredictProba(x)
		for c := range wp {
			if gp[c] != wp[c] {
				t.Fatalf("probe %d: decoded proba %v, original %v", pi, gp, wp)
			}
		}
	}
}

func TestAllocsPredictBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr, probes := randomFitted(t, rng)
	X := linalg.MustFromRows(probes)
	out := make([]int, len(probes))
	allocs := testing.AllocsPerRun(20, func() {
		tr.PredictBatch(X, out)
	})
	if allocs > 0 {
		t.Fatalf("PredictBatch allocates %.1f times per batch, want 0", allocs)
	}
}
