package tree

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

func init() {
	// Self-register so trees survive gob encoding behind the
	// ensemble.Classifier interface.
	gob.Register(&Tree{})
}

// nodeGob is one flattened tree node: Left/Right index into the node slice,
// -1 marks a leaf.
type nodeGob struct {
	Feature     int
	Threshold   float64
	Left, Right int
	Counts      []int
}

// treeGob is the exported wire form of a trained Tree, with the node
// pointers flattened into a preorder slice.
type treeGob struct {
	Cfg       Config
	NFeatures int
	NClasses  int
	NodeTally int
	Nodes     []nodeGob
}

func flatten(n *node, out *[]nodeGob) int {
	idx := len(*out)
	*out = append(*out, nodeGob{Feature: n.feature, Threshold: n.threshold, Left: -1, Right: -1, Counts: n.counts})
	if !n.leaf() {
		(*out)[idx].Left = flatten(n.left, out)
		(*out)[idx].Right = flatten(n.right, out)
	}
	return idx
}

// GobEncode implements gob.GobEncoder for trained-pipeline serialization.
func (t *Tree) GobEncode() ([]byte, error) {
	if t.root == nil {
		return nil, ErrNotFitted
	}
	g := treeGob{Cfg: t.cfg, NFeatures: t.nFeatures, NClasses: t.nClasses, NodeTally: t.nodes}
	flatten(t.root, &g.Nodes)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(g); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (t *Tree) GobDecode(b []byte) error {
	var g treeGob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&g); err != nil {
		return err
	}
	if len(g.Nodes) == 0 {
		return fmt.Errorf("tree: corrupt gob: no nodes")
	}
	nodes := make([]node, len(g.Nodes))
	for i, ng := range g.Nodes {
		nodes[i] = node{feature: ng.Feature, threshold: ng.Threshold, counts: ng.Counts}
		if ng.Left >= 0 || ng.Right >= 0 {
			// flatten emits children at strictly greater preorder indices;
			// anything else (including back-references, which would make
			// Predict loop forever) is corruption.
			if ng.Left <= i || ng.Left >= len(nodes) || ng.Right <= i || ng.Right >= len(nodes) {
				return fmt.Errorf("tree: corrupt gob: node %d children %d/%d", i, ng.Left, ng.Right)
			}
			nodes[i].left = &nodes[ng.Left]
			nodes[i].right = &nodes[ng.Right]
		}
	}
	t.cfg = g.Cfg
	t.nFeatures = g.NFeatures
	t.nClasses = g.NClasses
	t.nodes = g.NodeTally
	t.root = &nodes[0]
	// The wire format stays pointer-shaped (frozen v2 blobs must keep
	// decoding); the inference slab is rebuilt on this side of the wire.
	t.buildFlat()
	return nil
}
