package tree

import (
	"fmt"
	"math/bits"

	"trusthmd/pkg/linalg"
	"trusthmd/pkg/linalg/kernel"
)

// qsSlab is the bitmask ("QuickScorer"-style) form of a flattened tree
// with at most 64 leaves. Instead of walking root-to-leaf per sample, the
// bitmask walk evaluates EVERY internal node unconditionally and tracks,
// per sample, a uint64 bitvector of still-possible exit leaves:
//
//	v = ^0
//	for each internal node n:   if !(x[feats[n]] <= thr[n]) { v &= masks[n] }
//	exit leaf = lowest set bit of v
//
// Leaves are numbered left to right (preorder of the flat slab visits a
// node's left subtree first, so its leaves occupy one contiguous bit
// range). masks[n] clears exactly node n's left-subtree leaves — the
// leaves ruled out when the comparison goes false (right). The true exit
// leaf is never cleared (every ancestor's decision spares its subtree;
// non-ancestors clear only leaves outside the exit path), and the classic
// QuickScorer argument makes it the minimum surviving index.
//
// Because the refinement is an AND-lattice, node order is irrelevant and
// the SIMD kernel (pkg/linalg/kernel.TreeMask32: 32 samples per call over
// feature-major storage) is bit-identical to the scalar walk by
// construction — including NaN inputs, which fail every comparison and
// take the all-right path exactly as the branchy walk does.
type qsSlab struct {
	thr        []float64 // internal-node thresholds, preorder
	masks      []uint64  // complement of each node's left-subtree leaf range
	feats      []uint32  // internal-node split features
	leafLabels []int32   // majority label per leaf, left-to-right

	// lab64 is leafLabels padded to the full bitvector width so the
	// extraction loop can index it with TrailingZeros64(v)&63 — provably
	// in range, so the compiler drops the bounds check on the hottest
	// scalar loop of the batched walk. Padding entries are never selected
	// (the true exit leaf always survives, so v is never zero).
	lab64 [64]int32
}

// qsMaxLeaves bounds the bitvector width. Forest trees on the paper's DVFS
// workload average ~23 leaves; deeper trees simply keep the lockstep walk.
const qsMaxLeaves = 64

// allOnes32 is the fresh "every leaf still possible" bitvector block,
// copied (one memmove) instead of stored in a 32-iteration loop.
var allOnes32 = func() (v [32]uint64) {
	for i := range v {
		v[i] = ^uint64(0)
	}
	return
}()

// buildQS derives the bitmask slab from the flat slab. Called by buildFlat
// (so Fit and GobDecode both rebuild it); trees without a flat slab or
// with more than 64 leaves leave qs nil and use the lockstep walk.
func (t *Tree) buildQS() {
	t.qs = nil
	if t.flat == nil {
		return
	}
	nLeaves := 0
	for i := range t.flat {
		if t.flat[i].isLeaf(int32(i)) {
			nLeaves++
		}
	}
	if nLeaves > qsMaxLeaves {
		return
	}
	qs := &qsSlab{
		thr:        make([]float64, 0, len(t.flat)-nLeaves),
		masks:      make([]uint64, 0, len(t.flat)-nLeaves),
		feats:      make([]uint32, 0, len(t.flat)-nLeaves),
		leafLabels: make([]int32, 0, nLeaves),
	}
	var walk func(i int32) (lo, hi int)
	walk = func(i int32) (int, int) {
		nd := &t.flat[i]
		if nd.isLeaf(i) {
			lf := len(qs.leafLabels)
			qs.leafLabels = append(qs.leafLabels, t.labels[i])
			return lf, lf + 1
		}
		pos := len(qs.thr)
		qs.thr = append(qs.thr, nd.threshold)
		qs.feats = append(qs.feats, uint32(nd.feature))
		qs.masks = append(qs.masks, 0)
		llo, lhi := walk(nd.left)
		_, rhi := walk(nd.right)
		// Left-subtree width is at most 63 here: the right subtree holds at
		// least one of the <=64 leaves, so the shift cannot overflow.
		width := lhi - llo
		qs.masks[pos] = ^(((uint64(1) << width) - 1) << llo)
		return llo, rhi
	}
	walk(0)
	copy(qs.lab64[:], qs.leafLabels)
	t.qs = qs
}

// WantsCols reports whether PredictBatchCols would use the vectorized
// bitmask walk — i.e. whether transposing the batch for this tree pays.
// False for unfitted trees, trees with more than 64 leaves, and hosts
// whose dispatched kernel has no vector tree step.
func (t *Tree) WantsCols() bool {
	return t.qs != nil && kernel.TreeMaskSIMD()
}

// PredictBatchCols is PredictBatch with the batch also provided in
// feature-major (transposed) form: XT must be the transpose of X, computed
// once per batch and shared by every tree of the ensemble. Predictions are
// identical to PredictBatch — rows run through the bitmask kernel 32 at a
// time, the ragged tail through the scalar walk — and the method falls
// back to PredictBatch entirely when the bitmask form is unavailable.
func (t *Tree) PredictBatchCols(X, XT *linalg.Matrix, out []int) {
	if !t.WantsCols() || XT == nil || XT.Rows() != X.Cols() || XT.Cols() != X.Rows() {
		t.PredictBatch(X, out)
		return
	}
	if len(out) != X.Rows() {
		panic(fmt.Sprintf("tree: predict batch out len %d for %d rows", len(out), X.Rows()))
	}
	if X.Rows() > 0 && X.Cols() != t.nFeatures {
		panic(fmt.Sprintf("tree: input has %d features, trained on %d", X.Cols(), t.nFeatures))
	}
	qs := t.qs
	labels := &qs.lab64
	raw, stride := XT.Raw(), XT.Cols()
	n := len(out)
	r0 := 0
	for ; r0+32 <= n; r0 += 32 {
		v := allOnes32
		kernel.TreeMask32(&v, qs.thr, qs.masks, qs.feats, raw[r0:], stride)
		ov := out[r0 : r0+32 : r0+32]
		for j, vv := range v {
			// &63 makes the index provably in range (v is never zero: the
			// exit leaf always survives), eliding the bounds check.
			ov[j] = int(labels[bits.TrailingZeros64(vv)&63])
		}
	}
	if r0 < n {
		data, cols := X.Raw(), X.Cols()
		for ; r0 < n; r0++ {
			out[r0] = t.predictFlat(data[r0*cols : (r0+1)*cols])
		}
	}
}
