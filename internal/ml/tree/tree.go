// Package tree implements CART decision trees for classification: binary
// axis-aligned splits chosen by Gini impurity or entropy, with depth,
// minimum-leaf and random feature-subset controls. Trees are the base
// classifiers of the random-forest ensemble used throughout the paper's
// evaluation.
package tree

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"trusthmd/pkg/linalg"
)

// Criterion selects the split-quality measure.
type Criterion int

const (
	// Gini selects splits by Gini impurity decrease (CART default).
	Gini Criterion = iota
	// Entropy selects splits by information gain.
	Entropy
)

// String implements fmt.Stringer.
func (c Criterion) String() string {
	switch c {
	case Gini:
		return "gini"
	case Entropy:
		return "entropy"
	default:
		return fmt.Sprintf("criterion(%d)", int(c))
	}
}

// Config controls tree induction. The zero value means: unlimited depth,
// leaves of at least one sample, all features considered at every split,
// Gini impurity.
type Config struct {
	// MaxDepth limits tree depth; 0 means unlimited.
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf; values < 1 are
	// treated as 1.
	MinLeaf int
	// MaxFeatures is the number of features sampled (without replacement)
	// as split candidates at each node; 0 means all features and -1 means
	// round(sqrt(d)) chosen at fit time. Setting it to roughly sqrt(d)
	// turns bagged trees into a random forest.
	MaxFeatures int
	// Criterion is the impurity measure.
	Criterion Criterion
	// Seed drives the feature sub-sampling. Trees with MaxFeatures == 0 are
	// fully deterministic regardless of Seed.
	Seed int64
}

// Tree is a trained CART classifier. The zero value is unusable; call Fit.
type Tree struct {
	cfg       Config
	root      *node
	nFeatures int
	nClasses  int
	nodes     int
}

type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	counts    []int // class histogram at this node (leaf payload)
}

func (n *node) leaf() bool { return n.left == nil }

// ErrNotFitted reports prediction before training.
var ErrNotFitted = errors.New("tree: not fitted")

// New returns an untrained tree with the given configuration.
func New(cfg Config) *Tree {
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	return &Tree{cfg: cfg}
}

// Fit trains the tree on X (one sample per row) and labels y. Labels must
// be in [0, k) for some k >= 2 inferred from the data.
func (t *Tree) Fit(X *linalg.Matrix, y []int) error {
	if X.Rows() == 0 {
		return errors.New("tree: empty training set")
	}
	if X.Rows() != len(y) {
		return fmt.Errorf("tree: %d rows but %d labels", X.Rows(), len(y))
	}
	maxLabel := 0
	for i, lab := range y {
		if lab < 0 {
			return fmt.Errorf("tree: negative label %d at sample %d", lab, i)
		}
		if lab > maxLabel {
			maxLabel = lab
		}
	}
	t.nClasses = maxLabel + 1
	if t.nClasses < 2 {
		t.nClasses = 2
	}
	t.nFeatures = X.Cols()
	if t.cfg.MaxFeatures < 0 {
		t.cfg.MaxFeatures = int(math.Round(math.Sqrt(float64(X.Cols()))))
		if t.cfg.MaxFeatures < 1 {
			t.cfg.MaxFeatures = 1
		}
	}
	t.nodes = 0

	idx := make([]int, X.Rows())
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(t.cfg.Seed))
	b := &builder{t: t, X: X, y: y, rng: rng}
	t.root = b.build(idx, 0)
	return nil
}

type builder struct {
	t   *Tree
	X   *linalg.Matrix
	y   []int
	rng *rand.Rand
}

func (b *builder) classCounts(idx []int) []int {
	counts := make([]int, b.t.nClasses)
	for _, i := range idx {
		counts[b.y[i]]++
	}
	return counts
}

func (b *builder) build(idx []int, depth int) *node {
	b.t.nodes++
	counts := b.classCounts(idx)

	pure := false
	for _, c := range counts {
		if c == len(idx) {
			pure = true
			break
		}
	}
	if pure || len(idx) < 2*b.t.cfg.MinLeaf ||
		(b.t.cfg.MaxDepth > 0 && depth >= b.t.cfg.MaxDepth) {
		return &node{counts: counts}
	}

	feat, thr, ok := b.bestSplit(idx, counts)
	if !ok {
		return &node{counts: counts}
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if b.X.At(i, feat) <= thr {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return &node{counts: counts}
	}
	return &node{
		feature:   feat,
		threshold: thr,
		left:      b.build(leftIdx, depth+1),
		right:     b.build(rightIdx, depth+1),
	}
}

// bestSplit searches candidate features for the split with the largest
// impurity decrease. It returns ok=false when no split satisfies MinLeaf or
// improves impurity.
func (b *builder) bestSplit(idx []int, total []int) (feature int, threshold float64, ok bool) {
	features := b.candidateFeatures()
	n := float64(len(idx))
	parentImp := impurity(total, len(idx), b.t.cfg.Criterion)

	// Any valid split is acceptable, even at zero gain (as in sklearn's
	// CART): datasets like XOR have zero-gain first splits but still
	// separate perfectly once grown. Node sizes strictly shrink, so
	// termination is guaranteed.
	bestGain := math.Inf(-1)
	sorted := make([]int, len(idx))

	for _, f := range features {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, c int) bool { return b.X.At(sorted[a], f) < b.X.At(sorted[c], f) })

		leftCounts := make([]int, b.t.nClasses)
		rightCounts := append([]int(nil), total...)

		for pos := 0; pos < len(sorted)-1; pos++ {
			lab := b.y[sorted[pos]]
			leftCounts[lab]++
			rightCounts[lab]--

			v, next := b.X.At(sorted[pos], f), b.X.At(sorted[pos+1], f)
			if v == next {
				continue // cannot split between equal values
			}
			nl, nr := pos+1, len(sorted)-pos-1
			if nl < b.t.cfg.MinLeaf || nr < b.t.cfg.MinLeaf {
				continue
			}
			child := (float64(nl)*impurity(leftCounts, nl, b.t.cfg.Criterion) +
				float64(nr)*impurity(rightCounts, nr, b.t.cfg.Criterion)) / n
			if gain := parentImp - child; gain > bestGain {
				bestGain = gain
				feature = f
				threshold = v + (next-v)/2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

func (b *builder) candidateFeatures() []int {
	k := b.t.cfg.MaxFeatures
	if k <= 0 || k >= b.t.nFeatures {
		all := make([]int, b.t.nFeatures)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return b.rng.Perm(b.t.nFeatures)[:k]
}

// impurity computes Gini impurity or entropy (nats scale is irrelevant for
// split comparison) of a class histogram with n total samples.
func impurity(counts []int, n int, c Criterion) float64 {
	if n == 0 {
		return 0
	}
	inv := 1 / float64(n)
	switch c {
	case Entropy:
		var h float64
		for _, cnt := range counts {
			if cnt == 0 {
				continue
			}
			p := float64(cnt) * inv
			h -= p * math.Log2(p)
		}
		return h
	default: // Gini
		g := 1.0
		for _, cnt := range counts {
			p := float64(cnt) * inv
			g -= p * p
		}
		return g
	}
}

// Predict returns the majority class of the leaf reached by x.
func (t *Tree) Predict(x []float64) int {
	counts := t.leafCounts(x)
	best, bestC := 0, -1
	for lab, c := range counts {
		if c > bestC {
			best, bestC = lab, c
		}
	}
	return best
}

// PredictProba returns the class frequencies of the leaf reached by x.
func (t *Tree) PredictProba(x []float64) []float64 {
	counts := t.leafCounts(x)
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for lab, c := range counts {
		out[lab] = float64(c) / float64(total)
	}
	return out
}

func (t *Tree) leafCounts(x []float64) []int {
	if t.root == nil {
		panic(ErrNotFitted)
	}
	if len(x) != t.nFeatures {
		panic(fmt.Sprintf("tree: input has %d features, trained on %d", len(x), t.nFeatures))
	}
	n := t.root
	for !n.leaf() {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.counts
}

// Depth returns the depth of the trained tree (a stump is depth 0), or -1
// if the tree is unfitted.
func (t *Tree) Depth() int {
	if t.root == nil {
		return -1
	}
	return depthOf(t.root)
}

func depthOf(n *node) int {
	if n.leaf() {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// NodeCount returns the number of nodes materialised during the last Fit.
func (t *Tree) NodeCount() int { return t.nodes }

// NumClasses returns the number of classes inferred at fit time.
func (t *Tree) NumClasses() int { return t.nClasses }
