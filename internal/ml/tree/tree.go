// Package tree implements CART decision trees for classification: binary
// axis-aligned splits chosen by Gini impurity or entropy, with depth,
// minimum-leaf and random feature-subset controls. Trees are the base
// classifiers of the random-forest ensemble used throughout the paper's
// evaluation.
package tree

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"unsafe"

	"trusthmd/pkg/linalg"
)

// Criterion selects the split-quality measure.
type Criterion int

const (
	// Gini selects splits by Gini impurity decrease (CART default).
	Gini Criterion = iota
	// Entropy selects splits by information gain.
	Entropy
)

// String implements fmt.Stringer.
func (c Criterion) String() string {
	switch c {
	case Gini:
		return "gini"
	case Entropy:
		return "entropy"
	default:
		return fmt.Sprintf("criterion(%d)", int(c))
	}
}

// Config controls tree induction. The zero value means: unlimited depth,
// leaves of at least one sample, all features considered at every split,
// Gini impurity.
type Config struct {
	// MaxDepth limits tree depth; 0 means unlimited.
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf; values < 1 are
	// treated as 1.
	MinLeaf int
	// MaxFeatures is the number of features sampled (without replacement)
	// as split candidates at each node; 0 means all features and -1 means
	// round(sqrt(d)) chosen at fit time. Setting it to roughly sqrt(d)
	// turns bagged trees into a random forest.
	MaxFeatures int
	// Criterion is the impurity measure.
	Criterion Criterion
	// Seed drives the feature sub-sampling. Trees with MaxFeatures == 0 are
	// fully deterministic regardless of Seed.
	Seed int64
}

// Tree is a trained CART classifier. The zero value is unusable; call Fit.
type Tree struct {
	cfg       Config
	root      *node
	nFeatures int
	nClasses  int
	nodes     int

	// flat is the inference-time form of the tree: the pointer nodes packed
	// into one contiguous array-of-structs slab in preorder, with all leaf
	// class histograms concatenated in leafSlab, per-node majority labels
	// in labels, and flatDepth the longest root-to-leaf path. Predict walks
	// flat (a cache-local slab, no pointer chasing); Fit and GobDecode
	// rebuild it.
	flat      []flatNode
	leafSlab  []int
	labels    []int32
	flatDepth int

	// qs is the bitmask ("QuickScorer") form of flat for trees with <=64
	// leaves; see qs.go. Rebuilt alongside flat, nil when unavailable.
	qs *qsSlab
}

type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	counts    []int // class histogram at this node (leaf payload)
}

func (n *node) leaf() bool { return n.left == nil }

// flatNode is one packed tree node; 24 bytes keeps a whole fitted tree
// L1-resident. Leaves SELF-LOOP: left and right hold the leaf's own index,
// feature is 0 and threshold +Inf, so a walk that has reached a leaf can
// keep "stepping" without moving or branching on a leaf test. That lets
// the batched kernel advance several rows in lock-step for a fixed
// flatDepth iterations with no per-node leaf check at all — rows that
// arrive early simply spin in place — which converts the walk's serial
// pointer-chase latency into memory-level parallelism. leafOff is the
// leaf's offset into the shared histogram slab.
type flatNode struct {
	threshold float64
	feature   int32
	left      int32
	right     int32
	leafOff   int32
}

// isLeaf reports whether the node at index i self-loops.
func (n *flatNode) isLeaf(i int32) bool { return n.left == i }

// buildFlat packs the pointer tree into the contiguous traversal slab.
// Preorder matches the gob wire layout, so flattening is representation
// only — traversal decisions, and therefore predictions, are identical to
// the pointer walk (asserted by TestFlatMatchesPointerWalk). Trees whose
// leaves do not all carry an nClasses-wide histogram (a malformed decode)
// keep the pointer walk instead of a flat slab.
func (t *Tree) buildFlat() {
	if t.root == nil || !uniformLeaves(t.root, t.nClasses) {
		t.flat, t.leafSlab, t.qs = nil, nil, nil
		return
	}
	t.flat = t.flat[:0]
	t.leafSlab = t.leafSlab[:0]
	t.labels = t.labels[:0]
	t.flatDepth = 0
	t.flattenNode(t.root, 0)
	t.buildQS()
}

// uniformLeaves reports whether every leaf histogram has width classes.
func uniformLeaves(n *node, classes int) bool {
	if n.leaf() {
		return len(n.counts) == classes
	}
	return uniformLeaves(n.left, classes) && uniformLeaves(n.right, classes)
}

func (t *Tree) flattenNode(n *node, depth int) int32 {
	idx := int32(len(t.flat))
	t.flat = append(t.flat, flatNode{leafOff: -1})
	t.labels = append(t.labels, -1)
	if depth > t.flatDepth {
		t.flatDepth = depth
	}
	if n.leaf() {
		// Self-loop: both children point home and the +Inf threshold makes
		// the comparison outcome irrelevant (any value, NaN included, stays
		// put). The label is the argmax-with-ties-to-lower reduction
		// Predict used to run against the histogram on every call.
		t.flat[idx].left = idx
		t.flat[idx].right = idx
		t.flat[idx].threshold = math.Inf(1)
		t.flat[idx].leafOff = int32(len(t.leafSlab))
		t.labels[idx] = int32(majorityLabel(n.counts))
		t.leafSlab = append(t.leafSlab, n.counts...)
		return idx
	}
	t.flat[idx].feature = int32(n.feature)
	t.flat[idx].threshold = n.threshold
	t.flat[idx].left = t.flattenNode(n.left, depth+1)
	t.flat[idx].right = t.flattenNode(n.right, depth+1)
	return idx
}

// majorityLabel is the argmax-with-ties-to-lower reduction Predict applies
// to a leaf histogram, precomputed once per leaf at flatten time.
func majorityLabel(counts []int) int {
	best, bestC := 0, -1
	for lab, c := range counts {
		if c > bestC {
			best, bestC = lab, c
		}
	}
	return best
}

// ErrNotFitted reports prediction before training.
var ErrNotFitted = errors.New("tree: not fitted")

// New returns an untrained tree with the given configuration.
func New(cfg Config) *Tree {
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	return &Tree{cfg: cfg}
}

// Fit trains the tree on X (one sample per row) and labels y. Labels must
// be in [0, k) for some k >= 2 inferred from the data.
func (t *Tree) Fit(X *linalg.Matrix, y []int) error {
	if X.Rows() == 0 {
		return errors.New("tree: empty training set")
	}
	if X.Rows() != len(y) {
		return fmt.Errorf("tree: %d rows but %d labels", X.Rows(), len(y))
	}
	maxLabel := 0
	for i, lab := range y {
		if lab < 0 {
			return fmt.Errorf("tree: negative label %d at sample %d", lab, i)
		}
		if lab > maxLabel {
			maxLabel = lab
		}
	}
	t.nClasses = maxLabel + 1
	if t.nClasses < 2 {
		t.nClasses = 2
	}
	t.nFeatures = X.Cols()
	if t.cfg.MaxFeatures < 0 {
		t.cfg.MaxFeatures = int(math.Round(math.Sqrt(float64(X.Cols()))))
		if t.cfg.MaxFeatures < 1 {
			t.cfg.MaxFeatures = 1
		}
	}
	t.nodes = 0

	idx := make([]int, X.Rows())
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(t.cfg.Seed))
	b := &builder{t: t, X: X, y: y, rng: rng}
	t.root = b.build(idx, 0)
	t.buildFlat()
	return nil
}

type builder struct {
	t   *Tree
	X   *linalg.Matrix
	y   []int
	rng *rand.Rand
}

func (b *builder) classCounts(idx []int) []int {
	counts := make([]int, b.t.nClasses)
	for _, i := range idx {
		counts[b.y[i]]++
	}
	return counts
}

func (b *builder) build(idx []int, depth int) *node {
	b.t.nodes++
	counts := b.classCounts(idx)

	pure := false
	for _, c := range counts {
		if c == len(idx) {
			pure = true
			break
		}
	}
	if pure || len(idx) < 2*b.t.cfg.MinLeaf ||
		(b.t.cfg.MaxDepth > 0 && depth >= b.t.cfg.MaxDepth) {
		return &node{counts: counts}
	}

	feat, thr, ok := b.bestSplit(idx, counts)
	if !ok {
		return &node{counts: counts}
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if b.X.At(i, feat) <= thr {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return &node{counts: counts}
	}
	return &node{
		feature:   feat,
		threshold: thr,
		left:      b.build(leftIdx, depth+1),
		right:     b.build(rightIdx, depth+1),
	}
}

// bestSplit searches candidate features for the split with the largest
// impurity decrease. It returns ok=false when no split satisfies MinLeaf or
// improves impurity.
func (b *builder) bestSplit(idx []int, total []int) (feature int, threshold float64, ok bool) {
	features := b.candidateFeatures()
	n := float64(len(idx))
	parentImp := impurity(total, len(idx), b.t.cfg.Criterion)

	// Any valid split is acceptable, even at zero gain (as in sklearn's
	// CART): datasets like XOR have zero-gain first splits but still
	// separate perfectly once grown. Node sizes strictly shrink, so
	// termination is guaranteed.
	bestGain := math.Inf(-1)
	sorted := make([]int, len(idx))

	for _, f := range features {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, c int) bool { return b.X.At(sorted[a], f) < b.X.At(sorted[c], f) })

		leftCounts := make([]int, b.t.nClasses)
		rightCounts := append([]int(nil), total...)

		for pos := 0; pos < len(sorted)-1; pos++ {
			lab := b.y[sorted[pos]]
			leftCounts[lab]++
			rightCounts[lab]--

			v, next := b.X.At(sorted[pos], f), b.X.At(sorted[pos+1], f)
			if v == next {
				continue // cannot split between equal values
			}
			nl, nr := pos+1, len(sorted)-pos-1
			if nl < b.t.cfg.MinLeaf || nr < b.t.cfg.MinLeaf {
				continue
			}
			child := (float64(nl)*impurity(leftCounts, nl, b.t.cfg.Criterion) +
				float64(nr)*impurity(rightCounts, nr, b.t.cfg.Criterion)) / n
			if gain := parentImp - child; gain > bestGain {
				bestGain = gain
				feature = f
				threshold = v + (next-v)/2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

func (b *builder) candidateFeatures() []int {
	k := b.t.cfg.MaxFeatures
	if k <= 0 || k >= b.t.nFeatures {
		all := make([]int, b.t.nFeatures)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return b.rng.Perm(b.t.nFeatures)[:k]
}

// impurity computes Gini impurity or entropy (nats scale is irrelevant for
// split comparison) of a class histogram with n total samples.
func impurity(counts []int, n int, c Criterion) float64 {
	if n == 0 {
		return 0
	}
	inv := 1 / float64(n)
	switch c {
	case Entropy:
		var h float64
		for _, cnt := range counts {
			if cnt == 0 {
				continue
			}
			p := float64(cnt) * inv
			h -= p * math.Log2(p)
		}
		return h
	default: // Gini
		g := 1.0
		for _, cnt := range counts {
			p := float64(cnt) * inv
			g -= p * p
		}
		return g
	}
}

// Predict returns the majority class of the leaf reached by x.
func (t *Tree) Predict(x []float64) int {
	if t.flat != nil {
		if t.root == nil {
			panic(ErrNotFitted)
		}
		if len(x) != t.nFeatures {
			panic(fmt.Sprintf("tree: input has %d features, trained on %d", len(x), t.nFeatures))
		}
		return t.predictFlat(x)
	}
	return majorityLabel(t.leafCounts(x))
}

// predictFlat walks the packed slab to a leaf and returns its precomputed
// majority label. The walk keeps the branchy child select on purpose: the
// speculative branch beats an arithmetic (CMOV-style) select here because
// prediction lets the next node load issue before the compare resolves,
// and real splits are far from 50/50 on most of the path.
func (t *Tree) predictFlat(x []float64) int {
	// SliceData (not &x[0]) so a zero-feature degenerate tree — whose root
	// leaf never reads x — can still be walked.
	base := unsafe.Pointer(unsafe.SliceData(t.flat))
	xp := unsafe.Pointer(unsafe.SliceData(x))
	i := int32(0)
	for {
		nd := (*flatNode)(unsafe.Add(base, uintptr(i)*unsafe.Sizeof(flatNode{})))
		if nd.left == i {
			return int(t.labels[i])
		}
		next := nd.right
		if *(*float64)(unsafe.Add(xp, uintptr(nd.feature)*8)) <= nd.threshold {
			next = nd.left
		}
		i = next
	}
}

// PredictProba returns the class frequencies of the leaf reached by x.
func (t *Tree) PredictProba(x []float64) []float64 {
	counts := t.leafCounts(x)
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for lab, c := range counts {
		out[lab] = float64(c) / float64(total)
	}
	return out
}

func (t *Tree) leafCounts(x []float64) []int {
	if t.root == nil {
		panic(ErrNotFitted)
	}
	if len(x) != t.nFeatures {
		panic(fmt.Sprintf("tree: input has %d features, trained on %d", len(x), t.nFeatures))
	}
	if t.flat != nil {
		return t.leafCountsFlat(x)
	}
	return t.leafCountsPtr(x)
}

// leafCountsFlat is the hot traversal: successive nodes live in one
// contiguous slab, so the walk touches a handful of cache lines instead of
// chasing heap pointers.
func (t *Tree) leafCountsFlat(x []float64) []int {
	flat := t.flat
	i := int32(0)
	for {
		n := &flat[i]
		if n.isLeaf(i) {
			return t.leafSlab[n.leafOff : int(n.leafOff)+t.nClasses]
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// leafCountsPtr is the original pointer-chasing walk, kept as the fallback
// for unflattened trees and as the reference the property tests compare
// the flat walk against.
func (t *Tree) leafCountsPtr(x []float64) []int {
	n := t.root
	for !n.leaf() {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.counts
}

// PredictBatch writes the majority-class prediction for every row of X
// into out (length X.Rows()). It exists for batched ensemble inference:
// one tree's flat slab stays cache-hot across the whole batch instead of
// being evicted between samples by its ensemble neighbours. Predictions
// are identical to calling Predict per row.
//
// The kernel walks eight rows in lock-step for exactly flatDepth
// iterations. Leaves self-loop, so there is no per-node leaf test and no
// per-lane bookkeeping — rows that reach their leaf early spin in place —
// and the child select is branch-free mask arithmetic. Eight independent
// traversal chains keep the load and compare ports saturated where a lone
// walk would stall on its serial load→compare→load dependency (or, with
// branchy selects, on mispredicted data-dependent branches); on the
// paper's DVFS forests this kernel assesses ~40% faster end to end than
// the one-row-at-a-time walk.
//
// Unsafe loads are confined to indices the representation already proves:
// node indices come from the slab itself (flatten writes only in-range
// children), features are < nFeatures (checked against X.Cols() above),
// and lanes read rows [i, i+8) of X's backing array.
func (t *Tree) PredictBatch(X *linalg.Matrix, out []int) {
	if t.root == nil {
		panic(ErrNotFitted)
	}
	if len(out) != X.Rows() {
		panic(fmt.Sprintf("tree: predict batch out len %d for %d rows", len(out), X.Rows()))
	}
	if X.Rows() > 0 && X.Cols() != t.nFeatures {
		panic(fmt.Sprintf("tree: input has %d features, trained on %d", X.Cols(), t.nFeatures))
	}
	if t.flat == nil {
		for i := range out {
			out[i] = majorityLabel(t.leafCountsPtr(X.Row(i)))
		}
		return
	}
	// Raw row-major storage avoids a bounds-checked Row call per sample.
	data, cols := X.Raw(), X.Cols()
	flat, labels, depth := t.flat, t.labels, t.flatDepth
	base := unsafe.Pointer(unsafe.SliceData(flat))
	const ndSize = unsafe.Sizeof(flatNode{})
	n := len(out)
	i := 0
	for ; i+8 <= n; i += 8 {
		x0 := unsafe.Add(unsafe.Pointer(unsafe.SliceData(data)), uintptr(i*cols)*8)
		x1 := unsafe.Add(x0, uintptr(cols)*8)
		x2 := unsafe.Add(x1, uintptr(cols)*8)
		x3 := unsafe.Add(x2, uintptr(cols)*8)
		x4 := unsafe.Add(x3, uintptr(cols)*8)
		x5 := unsafe.Add(x4, uintptr(cols)*8)
		x6 := unsafe.Add(x5, uintptr(cols)*8)
		x7 := unsafe.Add(x6, uintptr(cols)*8)
		var j0, j1, j2, j3, j4, j5, j6, j7 int32
		for step := 0; step < depth; step++ {
			n0 := (*flatNode)(unsafe.Add(base, uintptr(j0)*ndSize))
			n1 := (*flatNode)(unsafe.Add(base, uintptr(j1)*ndSize))
			n2 := (*flatNode)(unsafe.Add(base, uintptr(j2)*ndSize))
			n3 := (*flatNode)(unsafe.Add(base, uintptr(j3)*ndSize))
			n4 := (*flatNode)(unsafe.Add(base, uintptr(j4)*ndSize))
			n5 := (*flatNode)(unsafe.Add(base, uintptr(j5)*ndSize))
			n6 := (*flatNode)(unsafe.Add(base, uintptr(j6)*ndSize))
			n7 := (*flatNode)(unsafe.Add(base, uintptr(j7)*ndSize))
			var b0 int32
			if *(*float64)(unsafe.Add(x0, uintptr(n0.feature)*8)) <= n0.threshold {
				b0 = 1
			}
			var b1 int32
			if *(*float64)(unsafe.Add(x1, uintptr(n1.feature)*8)) <= n1.threshold {
				b1 = 1
			}
			var b2 int32
			if *(*float64)(unsafe.Add(x2, uintptr(n2.feature)*8)) <= n2.threshold {
				b2 = 1
			}
			var b3 int32
			if *(*float64)(unsafe.Add(x3, uintptr(n3.feature)*8)) <= n3.threshold {
				b3 = 1
			}
			var b4 int32
			if *(*float64)(unsafe.Add(x4, uintptr(n4.feature)*8)) <= n4.threshold {
				b4 = 1
			}
			var b5 int32
			if *(*float64)(unsafe.Add(x5, uintptr(n5.feature)*8)) <= n5.threshold {
				b5 = 1
			}
			var b6 int32
			if *(*float64)(unsafe.Add(x6, uintptr(n6.feature)*8)) <= n6.threshold {
				b6 = 1
			}
			var b7 int32
			if *(*float64)(unsafe.Add(x7, uintptr(n7.feature)*8)) <= n7.threshold {
				b7 = 1
			}
			j0 = n0.right + (n0.left-n0.right)&(-b0)
			j1 = n1.right + (n1.left-n1.right)&(-b1)
			j2 = n2.right + (n2.left-n2.right)&(-b2)
			j3 = n3.right + (n3.left-n3.right)&(-b3)
			j4 = n4.right + (n4.left-n4.right)&(-b4)
			j5 = n5.right + (n5.left-n5.right)&(-b5)
			j6 = n6.right + (n6.left-n6.right)&(-b6)
			j7 = n7.right + (n7.left-n7.right)&(-b7)
		}
		out[i+0] = int(labels[j0])
		out[i+1] = int(labels[j1])
		out[i+2] = int(labels[j2])
		out[i+3] = int(labels[j3])
		out[i+4] = int(labels[j4])
		out[i+5] = int(labels[j5])
		out[i+6] = int(labels[j6])
		out[i+7] = int(labels[j7])
	}
	for ; i < n; i++ {
		out[i] = t.predictFlat(data[i*cols : (i+1)*cols])
	}
}

// Depth returns the depth of the trained tree (a stump is depth 0), or -1
// if the tree is unfitted.
func (t *Tree) Depth() int {
	if t.root == nil {
		return -1
	}
	return depthOf(t.root)
}

func depthOf(n *node) int {
	if n.leaf() {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// NodeCount returns the number of nodes materialised during the last Fit.
func (t *Tree) NodeCount() int { return t.nodes }

// NumClasses returns the number of classes inferred at fit time.
func (t *Tree) NumClasses() int { return t.nClasses }
