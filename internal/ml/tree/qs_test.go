package tree

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"trusthmd/pkg/linalg"
	"trusthmd/pkg/linalg/kernel"
)

// fitRandomTree trains a tree on random data with enough label noise to
// grow real structure.
func fitRandomTree(t *testing.T, rng *rand.Rand, rows, cols int, cfg Config) *Tree {
	t.Helper()
	X := linalg.New(rows, cols)
	y := make([]int, rows)
	for i := 0; i < rows; i++ {
		row := X.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		y[i] = rng.Intn(3)
		if row[0] > 0.3 {
			y[i] = 0 // learnable signal
		}
	}
	tr := New(cfg)
	if err := tr.Fit(X, y); err != nil {
		t.Fatalf("fit: %v", err)
	}
	return tr
}

func transpose(t *testing.T, X *linalg.Matrix) *linalg.Matrix {
	t.Helper()
	XT := linalg.New(X.Cols(), X.Rows())
	if err := X.TInto(XT); err != nil {
		t.Fatalf("transpose: %v", err)
	}
	return XT
}

// TestPredictBatchColsMatchesWalk pins the bitmask walk to the scalar
// walks over random trees and batch shapes, including sizes that are not
// multiples of the 32-row kernel block and batches smaller than one block.
func TestPredictBatchColsMatchesWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		cols := 2 + rng.Intn(16)
		cfg := Config{MaxDepth: 1 + rng.Intn(8), MinLeaf: 1 + rng.Intn(4)}
		tr := fitRandomTree(t, rng, 60+rng.Intn(200), cols, cfg)
		for _, n := range []int{1, 7, 31, 32, 33, 64, 95, 100} {
			X := linalg.New(n, cols)
			for i := 0; i < n; i++ {
				row := X.Row(i)
				for j := range row {
					row[j] = rng.NormFloat64() * 2
				}
				// Sprinkle specials: the bitmask walk must route NaN and
				// infinities exactly like the branchy walk.
				if rng.Intn(10) == 0 {
					row[rng.Intn(cols)] = math.NaN()
				}
				if rng.Intn(10) == 0 {
					row[rng.Intn(cols)] = math.Inf(1 - 2*rng.Intn(2))
				}
			}
			XT := transpose(t, X)
			got := make([]int, n)
			tr.PredictBatchCols(X, XT, got)
			want := make([]int, n)
			tr.PredictBatch(X, want)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d n=%d row %d: cols walk %d, batch walk %d (qs=%v simd=%v)",
						trial, n, i, got[i], want[i], tr.qs != nil, kernel.TreeMaskSIMD())
				}
				if p := tr.Predict(X.Row(i)); p != want[i] {
					t.Fatalf("trial %d row %d: Predict %d, PredictBatch %d", trial, i, p, want[i])
				}
			}
		}
	}
}

// TestQSSlabInvariants checks the construction directly: masks complement
// contiguous left-subtree leaf ranges and a scalar bitmask walk reaches
// the same leaf label as the tree walk.
func TestQSSlabInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := fitRandomTree(t, rng, 300, 8, Config{MaxDepth: 6})
	if tr.qs == nil {
		t.Skip("tree grew past 64 leaves")
	}
	qs := tr.qs
	if len(qs.thr) != len(qs.masks) || len(qs.thr) != len(qs.feats) {
		t.Fatalf("ragged slab: %d/%d/%d", len(qs.thr), len(qs.masks), len(qs.feats))
	}
	if len(qs.leafLabels) != len(qs.thr)+1 {
		t.Fatalf("binary tree must have internals+1 leaves: %d vs %d", len(qs.leafLabels), len(qs.thr))
	}
	for i, m := range qs.masks {
		z := ^m // the cleared leaf range must be contiguous and non-empty
		if z == 0 {
			t.Fatalf("mask %d clears nothing", i)
		}
		lo := bits.TrailingZeros64(z)
		width := bits.OnesCount64(z)
		if z != (((uint64(1)<<width)-1)<<lo) || lo+width > len(qs.leafLabels) {
			t.Fatalf("mask %d = %x is not a contiguous in-range leaf run", i, m)
		}
	}
	// Scalar bitmask walk == tree walk, sample by sample.
	for trial := 0; trial < 500; trial++ {
		x := make([]float64, 8)
		for j := range x {
			x[j] = rng.NormFloat64() * 2
		}
		v := ^uint64(0)
		for n := range qs.thr {
			if !(x[qs.feats[n]] <= qs.thr[n]) {
				v &= qs.masks[n]
			}
		}
		if got, want := int(qs.leafLabels[bits.TrailingZeros64(v)]), tr.Predict(x); got != want {
			t.Fatalf("scalar bitmask walk %d, tree walk %d", got, want)
		}
	}
}

// TestQSFallbacks: big trees keep the lockstep walk; shape mismatches and
// generic dispatch fall back inside PredictBatchCols rather than misuse
// the transposed input.
func TestQSFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	big := fitRandomTree(t, rng, 4000, 6, Config{}) // unlimited depth, noisy labels
	if big.qs != nil && len(big.qs.leafLabels) > 64 {
		t.Fatal("qs slab built past the 64-leaf bound")
	}
	small := fitRandomTree(t, rng, 200, 6, Config{MaxDepth: 4})
	X := linalg.New(50, 6)
	for i := 0; i < 50; i++ {
		row := X.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	want := make([]int, 50)
	small.PredictBatch(X, want)

	// nil and wrong-shape transposes fall back.
	for _, xt := range []*linalg.Matrix{nil, linalg.New(3, 50), linalg.New(6, 49)} {
		got := make([]int, 50)
		small.PredictBatchCols(X, xt, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("fallback mismatch at %d", i)
			}
		}
	}

	// Forced-generic dispatch: WantsCols must gate off and predictions hold.
	kernel.ForceGeneric()
	defer kernel.Reset()
	if small.WantsCols() {
		t.Fatal("WantsCols true under generic dispatch")
	}
	got := make([]int, 50)
	small.PredictBatchCols(X, transpose(t, X), got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("generic fallback mismatch at %d", i)
		}
	}
}

// TestQSSingleLeaf covers the degenerate pure-root tree: no internal
// nodes, bitvector stays all-ones, leaf 0 wins.
func TestQSSingleLeaf(t *testing.T) {
	X := linalg.New(4, 2)
	tr := New(Config{})
	if err := tr.Fit(X, []int{1, 1, 1, 1}); err != nil {
		t.Fatalf("fit: %v", err)
	}
	if tr.qs == nil {
		t.Skip("flat slab unavailable")
	}
	if len(tr.qs.thr) != 0 || len(tr.qs.leafLabels) != 1 {
		t.Fatalf("pure tree slab: %d internals, %d leaves", len(tr.qs.thr), len(tr.qs.leafLabels))
	}
	out := make([]int, 40)
	Xb := linalg.New(40, 2)
	tr.PredictBatchCols(Xb, transpose(t, Xb), out)
	for i, v := range out {
		if v != 1 {
			t.Fatalf("row %d predicted %d, want 1", i, v)
		}
	}
}
