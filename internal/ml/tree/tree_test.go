package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trusthmd/pkg/linalg"
)

func xorData() (*linalg.Matrix, []int) {
	X := linalg.MustFromRows([][]float64{
		{0, 0}, {0, 1}, {1, 0}, {1, 1},
		{0.1, 0.1}, {0.1, 0.9}, {0.9, 0.1}, {0.9, 0.9},
	})
	y := []int{0, 1, 1, 0, 0, 1, 1, 0}
	return X, y
}

func TestFitPredictXOR(t *testing.T) {
	X, y := xorData()
	tr := New(Config{})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < X.Rows(); i++ {
		if got := tr.Predict(X.Row(i)); got != y[i] {
			t.Fatalf("sample %d: got %d, want %d", i, got, y[i])
		}
	}
	if tr.Depth() < 2 {
		t.Fatalf("XOR needs depth >=2, got %d", tr.Depth())
	}
}

func TestEntropyCriterion(t *testing.T) {
	X, y := xorData()
	tr := New(Config{Criterion: Entropy})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < X.Rows(); i++ {
		if got := tr.Predict(X.Row(i)); got != y[i] {
			t.Fatalf("sample %d: got %d, want %d", i, got, y[i])
		}
	}
}

func TestCriterionString(t *testing.T) {
	if Gini.String() != "gini" || Entropy.String() != "entropy" {
		t.Fatal("criterion strings")
	}
	if Criterion(9).String() == "" {
		t.Fatal("unknown criterion should still render")
	}
}

func TestMaxDepthLimitsTree(t *testing.T) {
	X, y := xorData()
	tr := New(Config{MaxDepth: 1})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 1 {
		t.Fatalf("depth %d exceeds max 1", tr.Depth())
	}
}

func TestMinLeaf(t *testing.T) {
	X, y := xorData()
	tr := New(Config{MinLeaf: 4})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// With MinLeaf=4 on 8 samples, at most one split is possible.
	if tr.Depth() > 1 {
		t.Fatalf("depth %d with MinLeaf=4", tr.Depth())
	}
}

func TestPureNodeStopsEarly(t *testing.T) {
	X := linalg.MustFromRows([][]float64{{1}, {2}, {3}})
	y := []int{1, 1, 1}
	tr := New(Config{})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 0 {
		t.Fatalf("pure data should make a stump, depth=%d", tr.Depth())
	}
	if tr.Predict([]float64{-100}) != 1 {
		t.Fatal("stump should predict the pure class everywhere")
	}
}

func TestConstantFeaturesNoSplit(t *testing.T) {
	X := linalg.MustFromRows([][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}})
	y := []int{0, 1, 0, 1}
	tr := New(Config{})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 0 {
		t.Fatalf("unsplittable data should make a stump, depth=%d", tr.Depth())
	}
}

func TestPredictProba(t *testing.T) {
	X := linalg.MustFromRows([][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}})
	y := []int{0, 1, 0, 0}
	tr := New(Config{})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p := tr.PredictProba([]float64{0, 0})
	if math.Abs(p[0]-0.75) > 1e-12 || math.Abs(p[1]-0.25) > 1e-12 {
		t.Fatalf("proba %v", p)
	}
}

func TestFitErrors(t *testing.T) {
	tr := New(Config{})
	if err := tr.Fit(linalg.New(0, 2), nil); err == nil {
		t.Fatal("expected empty error")
	}
	if err := tr.Fit(linalg.New(2, 2), []int{0}); err == nil {
		t.Fatal("expected length error")
	}
	if err := tr.Fit(linalg.New(2, 2), []int{0, -1}); err == nil {
		t.Fatal("expected label error")
	}
}

func TestPredictPanics(t *testing.T) {
	tr := New(Config{})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected unfitted panic")
			}
		}()
		tr.Predict([]float64{1})
	}()
	X, y := xorData()
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected dimension panic")
			}
		}()
		tr.Predict([]float64{1})
	}()
}

func TestMaxFeaturesSubsampling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	rows := make([][]float64, n)
	y := make([]int, n)
	for i := range rows {
		x0 := rng.NormFloat64()
		rows[i] = []float64{x0, rng.NormFloat64(), rng.NormFloat64()}
		if x0 > 0 {
			y[i] = 1
		}
	}
	X := linalg.MustFromRows(rows)
	tr := New(Config{MaxFeatures: 1, Seed: 7})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < n; i++ {
		if tr.Predict(X.Row(i)) == y[i] {
			correct++
		}
	}
	if frac := float64(correct) / float64(n); frac < 0.9 {
		t.Fatalf("train accuracy %v too low even with feature sampling", frac)
	}
}

func TestSeedDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := make([][]float64, 60)
	y := make([]int, 60)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if rows[i][2] > 0 {
			y[i] = 1
		}
	}
	X := linalg.MustFromRows(rows)
	a := New(Config{MaxFeatures: 2, Seed: 11})
	b := New(Config{MaxFeatures: 2, Seed: 11})
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.3, -0.2, 0.1, 0.9}
	for i := 0; i < 50; i++ {
		probe[0] = float64(i)*0.1 - 2
		if a.Predict(probe) != b.Predict(probe) {
			t.Fatal("same seed must give same tree")
		}
	}
}

// Property: a fully grown tree (MinLeaf=1, no depth cap) achieves perfect
// training accuracy whenever no two identical inputs carry different labels.
func TestPerfectTrainFitProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		rows := make([][]float64, n)
		y := make([]int, n)
		for i := range rows {
			rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			y[i] = rng.Intn(2)
		}
		X := linalg.MustFromRows(rows)
		tr := New(Config{})
		if err := tr.Fit(X, y); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if tr.Predict(X.Row(i)) != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: probabilities are a valid distribution.
func TestProbaDistributionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(30)
		rows := make([][]float64, n)
		y := make([]int, n)
		for i := range rows {
			rows[i] = []float64{rng.NormFloat64()}
			y[i] = rng.Intn(2)
		}
		X := linalg.MustFromRows(rows)
		tr := New(Config{MaxDepth: 3})
		if err := tr.Fit(X, y); err != nil {
			return false
		}
		p := tr.PredictProba([]float64{rng.NormFloat64()})
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeCountAndNumClasses(t *testing.T) {
	X, y := xorData()
	tr := New(Config{})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tr.NodeCount() < 3 {
		t.Fatalf("node count %d", tr.NodeCount())
	}
	if tr.NumClasses() != 2 {
		t.Fatalf("classes %d", tr.NumClasses())
	}
	if New(Config{}).Depth() != -1 {
		t.Fatal("unfitted depth should be -1")
	}
}
