package platt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitSeparatedScores(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var scores []float64
	var y []int
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			scores = append(scores, 2+rng.NormFloat64())
			y = append(y, 1)
		} else {
			scores = append(scores, -2+rng.NormFloat64())
			y = append(y, 0)
		}
	}
	s, err := Fit(scores, y)
	if err != nil {
		t.Fatal(err)
	}
	if p := s.Proba(3); p < 0.9 {
		t.Fatalf("P(y=1|s=3)=%v, want high", p)
	}
	if p := s.Proba(-3); p > 0.1 {
		t.Fatalf("P(y=1|s=-3)=%v, want low", p)
	}
	if p := s.Proba(0); p < 0.2 || p > 0.8 {
		t.Fatalf("P(y=1|s=0)=%v, want uncertain", p)
	}
}

func TestFitMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var scores []float64
	var y []int
	for i := 0; i < 100; i++ {
		s := rng.NormFloat64() * 2
		scores = append(scores, s)
		if s+rng.NormFloat64() > 0 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	sc, err := Fit(scores, y)
	if err != nil {
		t.Fatal(err)
	}
	if sc.A >= 0 {
		t.Fatalf("A=%v, want negative for positively-oriented scores", sc.A)
	}
	f := func(a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		return sc.Proba(lo) <= sc.Proba(hi)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProbaRangeProperty(t *testing.T) {
	s := &Scaler{A: -1.3, B: 0.2}
	f := func(x float64) bool {
		p := s.Proba(x)
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfidence(t *testing.T) {
	s := &Scaler{A: -1, B: 0}
	if c := s.Confidence(0); math.Abs(c-0.5) > 1e-12 {
		t.Fatalf("confidence at margin %v", c)
	}
	if c := s.Confidence(10); c < 0.99 {
		t.Fatalf("confidence far from margin %v", c)
	}
	if c := s.Confidence(-10); c < 0.99 {
		t.Fatalf("confidence is symmetric: %v", c)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := Fit([]float64{1}, []int{1, 0}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := Fit([]float64{1, 2}, []int{1, 2}); err == nil {
		t.Fatal("expected label error")
	}
	if _, err := Fit([]float64{1, 2}, []int{1, 1}); err == nil {
		t.Fatal("expected single-class error")
	}
}

func TestNilScalerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var s *Scaler
	s.Proba(1)
}

// The key property motivating the paper: Platt scaling remains confident on
// scores far outside the calibration range (out-of-distribution inputs get
// high confidence), unlike ensemble vote entropy.
func TestOverconfidentOnOOD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var scores []float64
	var y []int
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			scores = append(scores, 1+0.3*rng.NormFloat64())
			y = append(y, 1)
		} else {
			scores = append(scores, -1+0.3*rng.NormFloat64())
			y = append(y, 0)
		}
	}
	s, err := Fit(scores, y)
	if err != nil {
		t.Fatal(err)
	}
	if c := s.Confidence(50); c < 0.999 {
		t.Fatalf("OOD-scale score should look (mis)confident, got %v", c)
	}
}
