// Package platt implements Platt scaling [Platt 1999]: fitting a sigmoid
// P(y=1|s) = 1/(1+exp(A*s+B)) to a classifier's raw decision scores. The
// paper's related work (Chawla et al. [5]) used Platt scaling to obtain
// prediction probabilities; the ablation experiment A1 contrasts such
// calibrated point-estimate confidence with ensemble vote entropy on
// out-of-distribution inputs.
package platt

import (
	"errors"
	"fmt"
	"math"
)

// Scaler is a fitted Platt calibration sigmoid.
type Scaler struct {
	A, B float64
}

// ErrNotFitted reports use before Fit.
var ErrNotFitted = errors.New("platt: not fitted")

// Fit learns A and B from decision scores and binary labels {0,1} by
// maximising the regularised log-likelihood with Newton iterations,
// following Platt's original target smoothing (Lin, Lin & Weng 2007
// formulation). It returns the fitted scaler.
func Fit(scores []float64, y []int) (*Scaler, error) {
	if len(scores) == 0 {
		return nil, errors.New("platt: empty training set")
	}
	if len(scores) != len(y) {
		return nil, fmt.Errorf("platt: %d scores but %d labels", len(scores), len(y))
	}
	var nPos, nNeg int
	for i, lab := range y {
		switch lab {
		case 1:
			nPos++
		case 0:
			nNeg++
		default:
			return nil, fmt.Errorf("platt: label %d at sample %d is not binary", lab, i)
		}
	}
	if nPos == 0 || nNeg == 0 {
		return nil, errors.New("platt: need both classes")
	}

	// Smoothed targets per Platt.
	hiTarget := (float64(nPos) + 1) / (float64(nPos) + 2)
	loTarget := 1 / (float64(nNeg) + 2)
	t := make([]float64, len(y))
	for i, lab := range y {
		if lab == 1 {
			t[i] = hiTarget
		} else {
			t[i] = loTarget
		}
	}

	a := 0.0
	b := math.Log((float64(nNeg) + 1) / (float64(nPos) + 1))
	const (
		maxIter = 100
		minStep = 1e-10
		sigma   = 1e-12
	)
	fval := objective(scores, t, a, b)
	for iter := 0; iter < maxIter; iter++ {
		// Gradient and Hessian of the negative log-likelihood.
		var g1, g2, h11, h22, h21 float64
		h11, h22 = sigma, sigma
		for i, s := range scores {
			p := fApB(s, a, b)
			d1 := t[i] - p // gradient of the NLL w.r.t. z = a*s+b
			d2 := p * (1 - p)
			g1 += s * d1
			g2 += d1
			h11 += s * s * d2
			h22 += d2
			h21 += s * d2
		}
		if math.Abs(g1) < 1e-5 && math.Abs(g2) < 1e-5 {
			break
		}
		det := h11*h22 - h21*h21
		dA := -(h22*g1 - h21*g2) / det
		dB := -(-h21*g1 + h11*g2) / det
		gd := g1*dA + g2*dB

		step := 1.0
		for step >= minStep {
			newA, newB := a+step*dA, b+step*dB
			newF := objective(scores, t, newA, newB)
			if newF < fval+1e-4*step*gd {
				a, b, fval = newA, newB, newF
				break
			}
			step /= 2
		}
		if step < minStep {
			break // line search failed; accept current point
		}
	}
	return &Scaler{A: a, B: b}, nil
}

// fApB returns the calibrated probability for score s under (a, b),
// computed in a numerically stable form.
func fApB(s, a, b float64) float64 {
	z := a*s + b
	if z >= 0 {
		e := math.Exp(-z)
		return e / (1 + e)
	}
	return 1 / (1 + math.Exp(z))
}

func objective(scores, t []float64, a, b float64) float64 {
	var f float64
	for i, s := range scores {
		z := a*s + b
		// Cross-entropy written in a form stable for both signs of z.
		if z >= 0 {
			f += t[i]*z + math.Log1p(math.Exp(-z))
		} else {
			f += (t[i]-1)*z + math.Log1p(math.Exp(z))
		}
	}
	return f
}

// Proba maps a raw decision score to a calibrated P(y=1).
func (s *Scaler) Proba(score float64) float64 {
	if s == nil {
		panic(ErrNotFitted)
	}
	return fApB(score, s.A, s.B)
}

// Confidence returns max(p, 1-p): the calibrated confidence of the hard
// decision implied by the score.
func (s *Scaler) Confidence(score float64) float64 {
	p := s.Proba(score)
	return math.Max(p, 1-p)
}
