// Package forest implements a random forest classifier: bagged CART trees
// with per-split random feature sub-sampling, trained in parallel. The
// forest exposes its per-tree votes so the uncertainty estimator can build
// the vote frequency distribution of the paper's Eq. 4.
package forest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"trusthmd/internal/ml/tree"
	"trusthmd/pkg/linalg"
)

// Config controls forest training. The zero value is not useful; use
// DefaultConfig as a starting point.
type Config struct {
	// Trees is the number of trees; values < 1 are an error at Fit.
	Trees int
	// MaxDepth limits each tree's depth; 0 means unlimited.
	MaxDepth int
	// MinLeaf is the per-tree minimum leaf size; values < 1 become 1.
	MinLeaf int
	// MaxFeatures is the per-split feature sample size; 0 means
	// round(sqrt(d)) chosen at fit time (the random-forest default).
	MaxFeatures int
	// Criterion is the split impurity measure.
	Criterion tree.Criterion
	// Seed drives bootstrap resampling and per-tree feature sampling.
	Seed int64
	// Workers caps fit-time parallelism; 0 means GOMAXPROCS.
	Workers int
}

// DefaultConfig returns the configuration used by the paper's experiments:
// 25 fully grown trees with sqrt(d) feature sampling.
func DefaultConfig(seed int64) Config {
	return Config{Trees: 25, Seed: seed}
}

// Forest is a trained random forest.
type Forest struct {
	cfg   Config
	trees []*tree.Tree
	dim   int
}

// ErrNotFitted reports prediction before training.
var ErrNotFitted = errors.New("forest: not fitted")

// New returns an untrained forest.
func New(cfg Config) *Forest {
	return &Forest{cfg: cfg}
}

// Fit trains the forest on X and y. Each tree sees a bootstrap replicate of
// the training set (sampling with replacement, n draws) and samples
// MaxFeatures candidate features at every split.
func (f *Forest) Fit(X *linalg.Matrix, y []int) error {
	if f.cfg.Trees < 1 {
		return fmt.Errorf("forest: config needs >=1 tree, got %d", f.cfg.Trees)
	}
	if X.Rows() == 0 {
		return errors.New("forest: empty training set")
	}
	if X.Rows() != len(y) {
		return fmt.Errorf("forest: %d rows but %d labels", X.Rows(), len(y))
	}
	f.dim = X.Cols()
	maxFeatures := f.cfg.MaxFeatures
	if maxFeatures <= 0 {
		maxFeatures = int(math.Round(math.Sqrt(float64(X.Cols()))))
		if maxFeatures < 1 {
			maxFeatures = 1
		}
	}

	f.trees = make([]*tree.Tree, f.cfg.Trees)
	workers := f.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > f.cfg.Trees {
		workers = f.cfg.Trees
	}

	// Pre-draw bootstrap seeds sequentially so that training is
	// deterministic regardless of goroutine scheduling.
	seedRng := rand.New(rand.NewSource(f.cfg.Seed))
	seeds := make([]int64, f.cfg.Trees)
	for i := range seeds {
		seeds[i] = seedRng.Int63()
	}

	var wg sync.WaitGroup
	errs := make([]error, f.cfg.Trees)
	sem := make(chan struct{}, workers)
	for t := 0; t < f.cfg.Trees; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			rng := rand.New(rand.NewSource(seeds[t]))
			bootX, bootY := bootstrap(X, y, rng)
			tr := tree.New(tree.Config{
				MaxDepth:    f.cfg.MaxDepth,
				MinLeaf:     f.cfg.MinLeaf,
				MaxFeatures: maxFeatures,
				Criterion:   f.cfg.Criterion,
				Seed:        rng.Int63(),
			})
			if err := tr.Fit(bootX, bootY); err != nil {
				errs[t] = fmt.Errorf("forest: tree %d: %w", t, err)
				return
			}
			f.trees[t] = tr
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			f.trees = nil
			return err
		}
	}
	return nil
}

// bootstrap draws a sampling-with-replacement replicate of (X, y).
func bootstrap(X *linalg.Matrix, y []int, rng *rand.Rand) (*linalg.Matrix, []int) {
	n := X.Rows()
	bx := linalg.New(n, X.Cols())
	by := make([]int, n)
	for i := 0; i < n; i++ {
		j := rng.Intn(n)
		copy(bx.Row(i), X.Row(j))
		by[i] = y[j]
	}
	return bx, by
}

// Predict returns the majority vote over trees. Ties resolve to the lower
// class index.
func (f *Forest) Predict(x []float64) int {
	return majority(f.Votes(x))
}

// majority returns the plurality label of a vote slice; ties resolve to
// the lower class index.
func majority(votes []int) int {
	counts := map[int]int{}
	best, bestC := 0, -1
	for _, v := range votes {
		counts[v]++
	}
	for lab := 0; lab <= maxKey(counts); lab++ {
		if counts[lab] > bestC {
			best, bestC = lab, counts[lab]
		}
	}
	return best
}

func maxKey(m map[int]int) int {
	max := 0
	for k := range m {
		if k > max {
			max = k
		}
	}
	return max
}

// Votes returns one hard prediction per tree — the analogue of iterating
// sklearn's estimators_ attribute.
func (f *Forest) Votes(x []float64) []int {
	if len(f.trees) == 0 {
		panic(ErrNotFitted)
	}
	votes := make([]int, len(f.trees))
	for i, tr := range f.trees {
		votes[i] = tr.Predict(x)
	}
	return votes
}

// VotesBatch returns one hard prediction per tree for every row of X:
// out[i][t] is tree t's vote on row i, so out[i] is exactly Votes(row i).
// Traversal is tree-major — each tree's flattened node slab stays
// cache-hot across the whole batch instead of being evicted by its
// neighbours between samples — which is what makes batched forest
// inference faster than per-row Votes loops at identical outputs.
func (f *Forest) VotesBatch(X *linalg.Matrix) [][]int {
	if len(f.trees) == 0 {
		panic(ErrNotFitted)
	}
	n, T := X.Rows(), len(f.trees)
	flat := make([]int, n*T)
	col := make([]int, n)
	for t, tr := range f.trees {
		tr.PredictBatch(X, col)
		for i, v := range col {
			flat[i*T+t] = v
		}
	}
	out := make([][]int, n)
	for i := range out {
		out[i] = flat[i*T : (i+1)*T : (i+1)*T]
	}
	return out
}

// PredictBatch writes the forest's majority vote for every row of X into
// out (length X.Rows()), batching traversal tree-major like VotesBatch but
// accumulating per-row class counts directly — two reusable slabs instead
// of VotesBatch's full rows x trees vote matrix. Labels are identical to
// calling Predict per row.
func (f *Forest) PredictBatch(X *linalg.Matrix, out []int) {
	if len(f.trees) == 0 {
		panic(ErrNotFitted)
	}
	if len(out) != X.Rows() {
		panic(fmt.Sprintf("forest: predict batch out len %d for %d rows", len(out), X.Rows()))
	}
	n := X.Rows()
	k := 0
	for _, tr := range f.trees {
		if c := tr.NumClasses(); c > k {
			k = c
		}
	}
	counts := make([]int, n*k)
	col := make([]int, n)
	for _, tr := range f.trees {
		tr.PredictBatch(X, col)
		ci := 0
		for _, v := range col {
			counts[ci+v]++
			ci += k
		}
	}
	for i := 0; i < n; i++ {
		row := counts[i*k : (i+1)*k]
		best := 0
		for lab, c := range row {
			if c > row[best] {
				best = lab
			}
		}
		out[i] = best
	}
}

// PredictProba averages per-tree leaf class frequencies (Eq. 3's model
// average with tree-probability outputs).
func (f *Forest) PredictProba(x []float64) []float64 {
	if len(f.trees) == 0 {
		panic(ErrNotFitted)
	}
	var out []float64
	for _, tr := range f.trees {
		p := tr.PredictProba(x)
		if out == nil {
			out = make([]float64, len(p))
		}
		for j, v := range p {
			out[j] += v
		}
	}
	inv := 1 / float64(len(f.trees))
	for j := range out {
		out[j] *= inv
	}
	return out
}

// Trees returns the trained trees (nil before Fit).
func (f *Forest) Trees() []*tree.Tree { return f.trees }

// NumTrees returns the number of trained trees.
func (f *Forest) NumTrees() int { return len(f.trees) }
