package forest

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"trusthmd/internal/ml/tree"
)

// forestGob is the exported wire form of a trained Forest. Trees carry
// their own GobEncode, which serialises the pointer-node layout; the
// flattened traversal slabs are rebuilt on decode, never shipped.
type forestGob struct {
	Cfg   Config
	Dim   int
	Trees []*tree.Tree
}

// GobEncode implements gob.GobEncoder for trained-forest serialization.
func (f *Forest) GobEncode() ([]byte, error) {
	if len(f.trees) == 0 {
		return nil, ErrNotFitted
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(forestGob{Cfg: f.cfg, Dim: f.dim, Trees: f.trees}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder. Decoded trees re-flatten
// themselves, so a loaded forest serves from the cache-local slabs
// immediately.
func (f *Forest) GobDecode(b []byte) error {
	var g forestGob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&g); err != nil {
		return err
	}
	if len(g.Trees) == 0 {
		return errors.New("forest: corrupt gob: no trees")
	}
	for i, tr := range g.Trees {
		if tr == nil {
			return fmt.Errorf("forest: corrupt gob: nil tree %d", i)
		}
	}
	f.cfg, f.dim, f.trees = g.Cfg, g.Dim, g.Trees
	return nil
}
