package forest

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trusthmd/pkg/linalg"
)

// twoBlobs generates two well-separated Gaussian blobs.
func twoBlobs(rng *rand.Rand, n int) (*linalg.Matrix, []int) {
	rows := make([][]float64, n)
	y := make([]int, n)
	for i := range rows {
		cls := i % 2
		cx := -3.0
		if cls == 1 {
			cx = 3
		}
		rows[i] = []float64{cx + rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y[i] = cls
	}
	return linalg.MustFromRows(rows), y
}

func TestFitPredictBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := twoBlobs(rng, 200)
	f := New(DefaultConfig(1))
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < X.Rows(); i++ {
		if f.Predict(X.Row(i)) == y[i] {
			correct++
		}
	}
	if frac := float64(correct) / float64(X.Rows()); frac < 0.97 {
		t.Fatalf("train accuracy %v", frac)
	}
}

func TestVotesShapeAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := twoBlobs(rng, 100)
	f := New(Config{Trees: 7, Seed: 2})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	votes := f.Votes([]float64{0, 0, 0})
	if len(votes) != 7 {
		t.Fatalf("%d votes, want 7", len(votes))
	}
	for _, v := range votes {
		if v != 0 && v != 1 {
			t.Fatalf("vote %d outside classes", v)
		}
	}
	if f.NumTrees() != 7 || len(f.Trees()) != 7 {
		t.Fatal("tree accessors")
	}
}

func TestPredictProbaDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := twoBlobs(rng, 100)
	f := New(Config{Trees: 15, Seed: 3})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p := f.PredictProba([]float64{-3, 0, 0})
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("proba out of range: %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("proba sums to %v", sum)
	}
	if p[0] < 0.8 {
		t.Fatalf("deep in class-0 blob but P(0)=%v", p[0])
	}
}

func TestFitErrors(t *testing.T) {
	f := New(Config{Trees: 0})
	if err := f.Fit(linalg.New(1, 1), []int{0}); err == nil {
		t.Fatal("expected trees error")
	}
	f = New(Config{Trees: 3})
	if err := f.Fit(linalg.New(0, 1), nil); err == nil {
		t.Fatal("expected empty error")
	}
	if err := f.Fit(linalg.New(2, 1), []int{0}); err == nil {
		t.Fatal("expected length error")
	}
	if err := f.Fit(linalg.New(2, 1), []int{0, -2}); err == nil {
		t.Fatal("expected label error propagated from tree")
	}
}

func TestUnfittedPanics(t *testing.T) {
	f := New(Config{Trees: 3})
	for name, fn := range map[string]func(){
		"votes":   func() { f.Votes([]float64{1}) },
		"predict": func() { f.Predict([]float64{1}) },
		"proba":   func() { f.PredictProba([]float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, y := twoBlobs(rng, 120)
	preds := func(workers int) []int {
		f := New(Config{Trees: 9, Seed: 99, Workers: workers})
		if err := f.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		out := make([]int, X.Rows())
		for i := range out {
			out[i] = f.Predict(X.Row(i))
		}
		return out
	}
	serial := preds(1)
	parallel := preds(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatal("forest must be deterministic regardless of worker count")
		}
	}
}

func TestBootstrapDiversity(t *testing.T) {
	// Trees trained on bootstraps of noisy data should not all be identical:
	// at least one pair of trees must disagree somewhere on a probe grid.
	rng := rand.New(rand.NewSource(5))
	n := 80
	rows := make([][]float64, n)
	y := make([]int, n)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		if rows[i][0]+0.5*rng.NormFloat64() > 0 {
			y[i] = 1
		}
	}
	X := linalg.MustFromRows(rows)
	f := New(Config{Trees: 10, Seed: 5})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	diverse := false
	for gx := -2.0; gx <= 2.0 && !diverse; gx += 0.25 {
		votes := f.Votes([]float64{gx, 0})
		for _, v := range votes {
			if v != votes[0] {
				diverse = true
				break
			}
		}
	}
	if !diverse {
		t.Fatal("bootstrapped trees show no diversity anywhere")
	}
}

// Property: majority vote equals the plurality of Votes().
func TestPredictMatchesVotesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, y := twoBlobs(rng, 60)
	f := New(Config{Trees: 11, Seed: 6})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	prop := func(a, b float64) bool {
		x := []float64{math.Mod(a, 5), math.Mod(b, 5), 0}
		votes := f.Votes(x)
		count := map[int]int{}
		for _, v := range votes {
			count[v]++
		}
		pred := f.Predict(x)
		for _, c := range count {
			if c > count[pred] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForestGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	X, y := twoBlobs(rng, 120)
	f := New(Config{Trees: 7, Seed: 5})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		t.Fatal(err)
	}
	var back Forest
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.NumTrees() != f.NumTrees() {
		t.Fatalf("decoded %d trees, want %d", back.NumTrees(), f.NumTrees())
	}
	wantVotes := f.VotesBatch(X)
	gotVotes := back.VotesBatch(X)
	out := make([]int, X.Rows())
	back.PredictBatch(X, out)
	for i := 0; i < X.Rows(); i++ {
		x := X.RowCopy(i)
		if got, want := back.Predict(x), f.Predict(x); got != want {
			t.Fatalf("row %d: decoded Predict %d, original %d", i, got, want)
		}
		if out[i] != f.Predict(x) {
			t.Fatalf("row %d: decoded PredictBatch %d, original Predict %d", i, out[i], f.Predict(x))
		}
		for tr := range wantVotes[i] {
			if gotVotes[i][tr] != wantVotes[i][tr] {
				t.Fatalf("row %d tree %d: decoded vote %d, original %d", i, tr, gotVotes[i][tr], wantVotes[i][tr])
			}
		}
		gp, wp := back.PredictProba(x), f.PredictProba(x)
		for c := range wp {
			if gp[c] != wp[c] {
				t.Fatalf("row %d: decoded proba %v, original %v", i, gp, wp)
			}
		}
	}
	var empty Forest
	if _, err := empty.GobEncode(); err == nil {
		t.Fatal("encoding an unfitted forest should fail")
	}
}

func TestVotesBatchMatchesVotes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, y := twoBlobs(rng, 150)
	f := New(Config{Trees: 9, Seed: 2})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	vb := f.VotesBatch(X)
	out := make([]int, X.Rows())
	f.PredictBatch(X, out)
	for i := 0; i < X.Rows(); i++ {
		x := X.RowCopy(i)
		votes := f.Votes(x)
		for tr := range votes {
			if vb[i][tr] != votes[tr] {
				t.Fatalf("row %d tree %d: batch vote %d, per-row vote %d", i, tr, vb[i][tr], votes[tr])
			}
		}
		if want := f.Predict(x); out[i] != want {
			t.Fatalf("row %d: PredictBatch %d, Predict %d", i, out[i], want)
		}
	}
}
