package bayes

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trusthmd/pkg/linalg"
)

func blobs(rng *rand.Rand, n int, gap float64) (*linalg.Matrix, []int) {
	rows := make([][]float64, n)
	y := make([]int, n)
	for i := range rows {
		cls := i % 2
		cx := -gap
		if cls == 1 {
			cx = gap
		}
		rows[i] = []float64{cx + rng.NormFloat64(), rng.NormFloat64()}
		y[i] = cls
	}
	return linalg.MustFromRows(rows), y
}

func TestFitPredictBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := blobs(rng, 400, 3)
	g := New(Config{})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < X.Rows(); i++ {
		if g.Predict(X.Row(i)) == y[i] {
			correct++
		}
	}
	if frac := float64(correct) / float64(X.Rows()); frac < 0.95 {
		t.Fatalf("accuracy %v", frac)
	}
	if g.NumClasses() != 2 {
		t.Fatalf("classes %d", g.NumClasses())
	}
}

func TestPredictProbaDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := blobs(rng, 200, 3)
	g := New(Config{})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p := g.PredictProba([]float64{-3, 0})
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("proba %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("proba sums to %v", sum)
	}
	if p[0] < 0.9 {
		t.Fatalf("deep in class 0 but P(0)=%v", p[0])
	}
	// Near the midpoint, the posterior must be uncertain.
	pm := g.PredictProba([]float64{0, 0})
	if pm[0] < 0.2 || pm[0] > 0.8 {
		t.Fatalf("midpoint posterior should be uncertain: %v", pm)
	}
}

func TestUnbalancedPriors(t *testing.T) {
	// 90/10 class imbalance: at the exact midpoint the prior should tilt
	// the decision toward the majority class.
	rng := rand.New(rand.NewSource(3))
	var rows [][]float64
	var y []int
	for i := 0; i < 900; i++ {
		rows = append(rows, []float64{-2 + rng.NormFloat64()})
		y = append(y, 0)
	}
	for i := 0; i < 100; i++ {
		rows = append(rows, []float64{2 + rng.NormFloat64()})
		y = append(y, 1)
	}
	g := New(Config{})
	if err := g.Fit(linalg.MustFromRows(rows), y); err != nil {
		t.Fatal(err)
	}
	if g.Predict([]float64{0}) != 0 {
		t.Fatal("prior should break the midpoint tie toward the majority")
	}
}

func TestConstantFeatureSmoothing(t *testing.T) {
	X := linalg.MustFromRows([][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}})
	y := []int{0, 0, 1, 1}
	g := New(Config{})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p := g.PredictProba([]float64{1, 5})
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("smoothing failed: %v", p)
		}
	}
}

func TestFitErrors(t *testing.T) {
	g := New(Config{})
	if err := g.Fit(linalg.New(0, 1), nil); err == nil {
		t.Fatal("expected empty error")
	}
	if err := g.Fit(linalg.New(2, 1), []int{0}); err == nil {
		t.Fatal("expected length error")
	}
	if err := g.Fit(linalg.MustFromRows([][]float64{{1}, {2}}), []int{0, -1}); err == nil {
		t.Fatal("expected label error")
	}
}

func TestPanics(t *testing.T) {
	g := New(Config{})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected unfitted panic")
			}
		}()
		g.Predict([]float64{1})
	}()
	rng := rand.New(rand.NewSource(4))
	X, y := blobs(rng, 50, 3)
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected dimension panic")
			}
		}()
		g.Predict([]float64{1})
	}()
}

// Property: posteriors are valid distributions for arbitrary inputs.
func TestProbaDistributionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := blobs(rng, 100, 2)
	g := New(Config{})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		x := []float64{math.Mod(a, 100), math.Mod(b, 100)}
		p := g.PredictProba(x)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
