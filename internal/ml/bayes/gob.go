package bayes

import (
	"bytes"
	"encoding/gob"
)

func init() {
	// Self-register so NB members survive gob encoding behind the
	// ensemble.Classifier interface.
	gob.Register(&Gaussian{})
}

// gaussianGob is the exported wire form of a trained Gaussian NB.
type gaussianGob struct {
	Cfg     Config
	Classes int
	Prior   []float64
	Mean    [][]float64
	Vari    [][]float64
}

// GobEncode implements gob.GobEncoder for trained-pipeline serialization.
func (g *Gaussian) GobEncode() ([]byte, error) {
	if g.mean == nil {
		return nil, ErrNotFitted
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(gaussianGob{
		Cfg: g.cfg, Classes: g.classes, Prior: g.prior, Mean: g.mean, Vari: g.vari,
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (g *Gaussian) GobDecode(b []byte) error {
	var w gaussianGob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	g.cfg, g.classes, g.prior, g.mean, g.vari = w.Cfg, w.Classes, w.Prior, w.Mean, w.Vari
	return nil
}
