// Package bayes implements Gaussian Naive Bayes — one of the classifier
// families evaluated on the HPC dataset by Zhou et al. [21], included here
// as an additional base model for the uncertainty study (experiment A4).
package bayes

import (
	"errors"
	"fmt"
	"math"

	"trusthmd/pkg/linalg"
)

// Config controls Gaussian NB training.
type Config struct {
	// VarSmoothing is added to every per-feature variance to keep the
	// likelihood finite for near-constant features (default 1e-9 times the
	// largest feature variance, as in scikit-learn).
	VarSmoothing float64
}

// Gaussian is a trained Gaussian Naive Bayes classifier.
type Gaussian struct {
	cfg     Config
	classes int
	prior   []float64   // log priors per class
	mean    [][]float64 // [class][feature]
	vari    [][]float64 // [class][feature]
}

// ErrNotFitted reports prediction before training.
var ErrNotFitted = errors.New("bayes: not fitted")

// New returns an untrained Gaussian NB.
func New(cfg Config) *Gaussian { return &Gaussian{cfg: cfg} }

// Fit estimates per-class feature means, variances and priors.
func (g *Gaussian) Fit(X *linalg.Matrix, y []int) error {
	if X.Rows() == 0 {
		return errors.New("bayes: empty training set")
	}
	if X.Rows() != len(y) {
		return fmt.Errorf("bayes: %d rows but %d labels", X.Rows(), len(y))
	}
	maxLabel := 0
	for i, lab := range y {
		if lab < 0 {
			return fmt.Errorf("bayes: negative label %d at sample %d", lab, i)
		}
		if lab > maxLabel {
			maxLabel = lab
		}
	}
	g.classes = maxLabel + 1
	if g.classes < 2 {
		g.classes = 2
	}
	d := X.Cols()

	counts := make([]int, g.classes)
	g.mean = make([][]float64, g.classes)
	g.vari = make([][]float64, g.classes)
	for c := range g.mean {
		g.mean[c] = make([]float64, d)
		g.vari[c] = make([]float64, d)
	}
	for i := 0; i < X.Rows(); i++ {
		c := y[i]
		counts[c]++
		row := X.Row(i)
		for j, v := range row {
			g.mean[c][j] += v
		}
	}
	for c := range g.mean {
		if counts[c] == 0 {
			continue
		}
		inv := 1 / float64(counts[c])
		for j := range g.mean[c] {
			g.mean[c][j] *= inv
		}
	}
	var maxVar float64
	for i := 0; i < X.Rows(); i++ {
		c := y[i]
		row := X.Row(i)
		for j, v := range row {
			dlt := v - g.mean[c][j]
			g.vari[c][j] += dlt * dlt
		}
	}
	for c := range g.vari {
		if counts[c] == 0 {
			continue
		}
		inv := 1 / float64(counts[c])
		for j := range g.vari[c] {
			g.vari[c][j] *= inv
			if g.vari[c][j] > maxVar {
				maxVar = g.vari[c][j]
			}
		}
	}
	smooth := g.cfg.VarSmoothing
	if smooth <= 0 {
		smooth = 1e-9 * math.Max(maxVar, 1)
	}
	for c := range g.vari {
		for j := range g.vari[c] {
			g.vari[c][j] += smooth
		}
	}

	g.prior = make([]float64, g.classes)
	for c, n := range counts {
		if n == 0 {
			g.prior[c] = math.Inf(-1) // class absent: impossible
			continue
		}
		g.prior[c] = math.Log(float64(n) / float64(X.Rows()))
	}
	return nil
}

// logJoint returns the per-class log joint likelihood log P(c) + log P(x|c).
func (g *Gaussian) logJoint(x []float64) []float64 {
	if g.mean == nil {
		panic(ErrNotFitted)
	}
	if len(x) != len(g.mean[0]) {
		panic(fmt.Sprintf("bayes: input has %d features, trained on %d", len(x), len(g.mean[0])))
	}
	out := make([]float64, g.classes)
	for c := 0; c < g.classes; c++ {
		lj := g.prior[c]
		if math.IsInf(lj, -1) {
			out[c] = lj
			continue
		}
		for j, v := range x {
			d := v - g.mean[c][j]
			lj += -0.5*math.Log(2*math.Pi*g.vari[c][j]) - d*d/(2*g.vari[c][j])
		}
		out[c] = lj
	}
	return out
}

// Predict returns the maximum a-posteriori class.
func (g *Gaussian) Predict(x []float64) int {
	return linalg.ArgMax(g.logJoint(x))
}

// PredictProba returns the normalised posterior over classes.
func (g *Gaussian) PredictProba(x []float64) []float64 {
	lj := g.logJoint(x)
	maxLJ := lj[linalg.ArgMax(lj)]
	out := make([]float64, len(lj))
	var sum float64
	for c, v := range lj {
		out[c] = math.Exp(v - maxLJ)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
	return out
}

// NumClasses returns the number of classes inferred at fit time.
func (g *Gaussian) NumClasses() int { return g.classes }
