package knn

import (
	"bytes"
	"encoding/gob"

	"trusthmd/pkg/linalg"
)

func init() {
	// Self-register so kNN members survive gob encoding behind the
	// ensemble.Classifier interface.
	gob.Register(&KNN{})
}

// knnGob is the exported wire form of a fitted KNN.
type knnGob struct {
	Cfg     Config
	X       *linalg.Matrix
	Y       []int
	Classes int
}

// GobEncode implements gob.GobEncoder for trained-pipeline serialization.
func (k *KNN) GobEncode() ([]byte, error) {
	if k.X == nil {
		return nil, ErrNotFitted
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(knnGob{Cfg: k.cfg, X: k.X, Y: k.y, Classes: k.classes}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (k *KNN) GobDecode(b []byte) error {
	var g knnGob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&g); err != nil {
		return err
	}
	k.cfg, k.X, k.y, k.classes = g.Cfg, g.X, g.Y, g.Classes
	return nil
}
