// Package knn implements a k-nearest-neighbours classifier — another
// family from the Zhou et al. [21] HPC study, included as a base model in
// the uncertainty ablation A4. The implementation is a brute-force
// Euclidean search, adequate for the ensemble sizes and training-set
// scales used in the experiments.
package knn

import (
	"errors"
	"fmt"
	"sort"

	"trusthmd/pkg/linalg"
)

// Config controls kNN classification.
type Config struct {
	// K is the neighbourhood size (default 5). Even values break ties
	// toward the lower class index.
	K int
}

// KNN is a fitted k-nearest-neighbours classifier (it memorises the
// training set).
type KNN struct {
	cfg     Config
	X       *linalg.Matrix
	y       []int
	classes int
}

// ErrNotFitted reports prediction before training.
var ErrNotFitted = errors.New("knn: not fitted")

// New returns an untrained kNN.
func New(cfg Config) *KNN {
	if cfg.K <= 0 {
		cfg.K = 5
	}
	return &KNN{cfg: cfg}
}

// Fit memorises the training set.
func (k *KNN) Fit(X *linalg.Matrix, y []int) error {
	if X.Rows() == 0 {
		return errors.New("knn: empty training set")
	}
	if X.Rows() != len(y) {
		return fmt.Errorf("knn: %d rows but %d labels", X.Rows(), len(y))
	}
	maxLabel := 0
	for i, lab := range y {
		if lab < 0 {
			return fmt.Errorf("knn: negative label %d at sample %d", lab, i)
		}
		if lab > maxLabel {
			maxLabel = lab
		}
	}
	k.classes = maxLabel + 1
	if k.classes < 2 {
		k.classes = 2
	}
	k.X = X.Clone()
	k.y = append([]int(nil), y...)
	return nil
}

// neighbours returns the class histogram of the K nearest training points.
func (k *KNN) neighbours(x []float64) []int {
	if k.X == nil {
		panic(ErrNotFitted)
	}
	if len(x) != k.X.Cols() {
		panic(fmt.Sprintf("knn: input has %d features, trained on %d", len(x), k.X.Cols()))
	}
	n := k.X.Rows()
	type cand struct {
		dist  float64
		label int
	}
	cands := make([]cand, n)
	for i := 0; i < n; i++ {
		cands[i] = cand{dist: linalg.SqDist(x, k.X.Row(i)), label: k.y[i]}
	}
	kk := k.cfg.K
	if kk > n {
		kk = n
	}
	// Partial selection: sort is fine at these scales and keeps the code
	// simple and allocation-light.
	sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
	counts := make([]int, k.classes)
	for i := 0; i < kk; i++ {
		counts[cands[i].label]++
	}
	return counts
}

// Predict returns the plurality class of the K nearest neighbours.
func (k *KNN) Predict(x []float64) int {
	counts := k.neighbours(x)
	best := 0
	for c, v := range counts {
		if v > counts[best] {
			best = c
		}
	}
	return best
}

// PredictProba returns neighbour class frequencies.
func (k *KNN) PredictProba(x []float64) []float64 {
	counts := k.neighbours(x)
	total := 0
	for _, v := range counts {
		total += v
	}
	out := make([]float64, len(counts))
	for c, v := range counts {
		out[c] = float64(v) / float64(total)
	}
	return out
}

// NumClasses returns the number of classes inferred at fit time.
func (k *KNN) NumClasses() int { return k.classes }
