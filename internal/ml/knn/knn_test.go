package knn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trusthmd/pkg/linalg"
)

func blobs(rng *rand.Rand, n int, gap float64) (*linalg.Matrix, []int) {
	rows := make([][]float64, n)
	y := make([]int, n)
	for i := range rows {
		cls := i % 2
		cx := -gap
		if cls == 1 {
			cx = gap
		}
		rows[i] = []float64{cx + rng.NormFloat64(), rng.NormFloat64()}
		y[i] = cls
	}
	return linalg.MustFromRows(rows), y
}

func TestFitPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := blobs(rng, 200, 3)
	k := New(Config{K: 5})
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < X.Rows(); i++ {
		if k.Predict(X.Row(i)) == y[i] {
			correct++
		}
	}
	if frac := float64(correct) / float64(X.Rows()); frac < 0.95 {
		t.Fatalf("accuracy %v", frac)
	}
	if k.NumClasses() != 2 {
		t.Fatal("classes")
	}
}

func TestK1MemorisesTraining(t *testing.T) {
	X := linalg.MustFromRows([][]float64{{0}, {1}, {2}, {3}})
	y := []int{0, 1, 0, 1}
	k := New(Config{K: 1})
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < X.Rows(); i++ {
		if k.Predict(X.Row(i)) != y[i] {
			t.Fatalf("1-NN must memorise training point %d", i)
		}
	}
}

func TestDefaultK(t *testing.T) {
	k := New(Config{})
	if k.cfg.K != 5 {
		t.Fatalf("default K %d", k.cfg.K)
	}
}

func TestKLargerThanTrainingSet(t *testing.T) {
	X := linalg.MustFromRows([][]float64{{0}, {1}, {2}})
	y := []int{0, 0, 1}
	k := New(Config{K: 50})
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// With K clamped to n, prediction is the global majority.
	if k.Predict([]float64{10}) != 0 {
		t.Fatal("clamped K should vote over the whole training set")
	}
}

func TestPredictProba(t *testing.T) {
	X := linalg.MustFromRows([][]float64{{0}, {0.1}, {0.2}, {10}})
	y := []int{0, 0, 1, 1}
	k := New(Config{K: 3})
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p := k.PredictProba([]float64{0})
	if math.Abs(p[0]-2.0/3) > 1e-12 || math.Abs(p[1]-1.0/3) > 1e-12 {
		t.Fatalf("proba %v", p)
	}
}

func TestFitDefensiveCopies(t *testing.T) {
	X := linalg.MustFromRows([][]float64{{0}, {1}})
	y := []int{0, 1}
	k := New(Config{K: 1})
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	X.Set(0, 0, 100)
	y[0] = 1
	if k.Predict([]float64{0}) != 0 {
		t.Fatal("Fit must copy the training data")
	}
}

func TestFitErrors(t *testing.T) {
	k := New(Config{})
	if err := k.Fit(linalg.New(0, 1), nil); err == nil {
		t.Fatal("expected empty error")
	}
	if err := k.Fit(linalg.New(2, 1), []int{0}); err == nil {
		t.Fatal("expected length error")
	}
	if err := k.Fit(linalg.MustFromRows([][]float64{{1}, {2}}), []int{0, -1}); err == nil {
		t.Fatal("expected label error")
	}
}

func TestPanics(t *testing.T) {
	k := New(Config{})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected unfitted panic")
			}
		}()
		k.Predict([]float64{1})
	}()
	if err := k.Fit(linalg.MustFromRows([][]float64{{1}, {2}}), []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected dimension panic")
			}
		}()
		k.Predict([]float64{1, 2})
	}()
}

// Property: PredictProba is a valid distribution and Predict is its argmax
// (up to tie-breaking toward lower class indices).
func TestProbaArgmaxProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := blobs(rng, 60, 2)
	k := New(Config{K: 7})
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		x := []float64{math.Mod(a, 10), math.Mod(b, 10)}
		p := k.PredictProba(x)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		pred := k.Predict(x)
		for _, v := range p {
			if v > p[pred] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
