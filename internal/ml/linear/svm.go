package linear

import (
	"fmt"
	"math"
	"math/rand"

	"trusthmd/pkg/linalg"
)

// SVMConfig controls linear-SVM training with the Pegasos sub-gradient
// solver (Shalev-Shwartz et al.). Zero values fall back to the documented
// defaults at construction time.
type SVMConfig struct {
	// Lambda is the regularisation strength (default 1e-3). The margin is
	// proportional to 1/sqrt(Lambda).
	Lambda float64
	// Epochs is the number of passes over the data (default 200).
	Epochs int
	// Tol declares convergence when the relative change of the objective
	// between epochs drops below it (default 1e-4).
	Tol float64
	// MaxObjective marks training as non-converged when the final
	// regularised hinge objective stays above it. The paper reports that
	// SVM "failed to converge" on the bootstrapped HPC dataset — heavily
	// overlapping classes keep the hinge loss high — and this knob lets
	// callers detect that condition. 0 disables the check.
	MaxObjective float64
	// Seed drives example sampling.
	Seed int64
}

// SVM is a binary linear support vector machine with labels {0, 1}
// externally and {-1, +1} internally.
type SVM struct {
	cfg       SVMConfig
	w         []float64
	bias      float64
	converged bool
	objective float64
	epochs    int
}

// ErrNoConvergence reports that Pegasos did not reach the configured
// objective; mirrors sklearn's ConvergenceWarning turned into a hard error,
// which the paper hit on the HPC dataset.
type ErrNoConvergence struct {
	Objective float64
	Epochs    int
}

func (e *ErrNoConvergence) Error() string {
	return fmt.Sprintf("svm: failed to converge after %d epochs (objective %.4f)", e.Epochs, e.Objective)
}

// NewSVM returns an untrained SVM.
func NewSVM(cfg SVMConfig) *SVM {
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1e-3
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 200
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-4
	}
	return &SVM{cfg: cfg}
}

// Fit trains on X with binary labels y in {0, 1}. It returns
// *ErrNoConvergence when MaxObjective is set and not reached; the model is
// still usable for prediction in that case, and Converged() reports false.
func (s *SVM) Fit(X *linalg.Matrix, y []int) error {
	if err := checkBinary(X, y); err != nil {
		return fmt.Errorf("svm: %w", err)
	}
	n, d := X.Rows(), X.Cols()
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	s.w = make([]float64, d)
	s.bias = 0
	s.converged = false

	signed := make([]float64, n)
	for i, lab := range y {
		signed[i] = 2*float64(lab) - 1
	}

	// Augment the input with a constant-1 feature so the bias rides inside
	// the weight vector (lightly regularised — standard for Pegasos).
	waug := make([]float64, d+1)
	wavg := make([]float64, d+1)
	row := make([]float64, d+1)
	row[d] = 1
	maxNorm := 1 / math.Sqrt(s.cfg.Lambda)

	setModel := func(src []float64) {
		copy(s.w, src[:d])
		s.bias = src[d]
	}

	t := 1
	prevObj := math.Inf(1)
	for epoch := 1; epoch <= s.cfg.Epochs; epoch++ {
		for k := 0; k < n; k++ {
			i := rng.Intn(n)
			copy(row[:d], X.Row(i))
			eta := 1 / (s.cfg.Lambda * float64(t))
			margin := signed[i] * linalg.Dot(waug, row)

			linalg.ScaleVec(waug, 1-eta*s.cfg.Lambda)
			if margin < 1 {
				linalg.AddScaled(waug, eta*signed[i], row)
			}
			// Project onto the ball of radius 1/sqrt(lambda) — the Pegasos
			// projection step, which bounds the iterates.
			if nrm := linalg.Norm(waug); nrm > maxNorm {
				linalg.ScaleVec(waug, maxNorm/nrm)
			}
			// Averaged Pegasos: running mean of the iterates.
			for j := range wavg {
				wavg[j] += (waug[j] - wavg[j]) / float64(t)
			}
			t++
		}
		setModel(wavg)
		obj := s.objectiveOn(X, signed)
		if epoch > 1 && math.Abs(prevObj-obj) <= s.cfg.Tol*math.Max(prevObj, 1) {
			s.objective = obj
			s.epochs = epoch
			if s.cfg.MaxObjective > 0 && obj > s.cfg.MaxObjective {
				return &ErrNoConvergence{Objective: obj, Epochs: epoch}
			}
			s.converged = true
			return nil
		}
		prevObj = obj
	}
	s.objective = prevObj
	s.epochs = s.cfg.Epochs
	if s.cfg.MaxObjective > 0 && prevObj > s.cfg.MaxObjective {
		return &ErrNoConvergence{Objective: prevObj, Epochs: s.cfg.Epochs}
	}
	// Objective plateaued within Epochs without meeting Tol: accept the
	// model but report non-convergence via Converged().
	return nil
}

// objectiveOn evaluates the regularised hinge objective
// lambda/2 ||w||^2 + mean(hinge).
func (s *SVM) objectiveOn(X *linalg.Matrix, signed []float64) float64 {
	var hinge float64
	for i := 0; i < X.Rows(); i++ {
		m := signed[i] * (linalg.Dot(s.w, X.Row(i)) + s.bias)
		if m < 1 {
			hinge += 1 - m
		}
	}
	return 0.5*s.cfg.Lambda*linalg.Dot(s.w, s.w) + hinge/float64(X.Rows())
}

// Score returns the signed distance proxy w·x + b.
func (s *SVM) Score(x []float64) float64 {
	if s.w == nil {
		panic(ErrNotFitted)
	}
	if len(x) != len(s.w) {
		panic(fmt.Sprintf("svm: input has %d features, trained on %d", len(x), len(s.w)))
	}
	return linalg.Dot(s.w, x) + s.bias
}

// Predict returns 1 when the score is non-negative, else 0.
func (s *SVM) Predict(x []float64) int {
	if s.Score(x) >= 0 {
		return 1
	}
	return 0
}

// Converged reports whether the last Fit met its tolerance and objective
// requirements.
func (s *SVM) Converged() bool { return s.converged }

// Objective returns the final training objective of the last Fit.
func (s *SVM) Objective() float64 { return s.objective }

// EpochsRun returns the number of epochs the last Fit executed.
func (s *SVM) EpochsRun() int { return s.epochs }

// Weights returns a copy of the trained weight vector and the bias.
func (s *SVM) Weights() ([]float64, float64) {
	if s.w == nil {
		return nil, 0
	}
	return linalg.CloneVec(s.w), s.bias
}
