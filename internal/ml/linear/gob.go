package linear

import (
	"bytes"
	"encoding/gob"
)

func init() {
	// Self-register so linear members survive gob encoding behind the
	// ensemble.Classifier interface.
	gob.Register(&Logistic{})
	gob.Register(&SVM{})
}

// logisticGob is the exported wire form of a trained Logistic.
type logisticGob struct {
	Cfg  LogisticConfig
	W    []float64
	Bias float64
}

// GobEncode implements gob.GobEncoder for trained-pipeline serialization.
func (l *Logistic) GobEncode() ([]byte, error) {
	if l.w == nil {
		return nil, ErrNotFitted
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(logisticGob{Cfg: l.cfg, W: l.w, Bias: l.bias}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (l *Logistic) GobDecode(b []byte) error {
	var g logisticGob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&g); err != nil {
		return err
	}
	l.cfg, l.w, l.bias = g.Cfg, g.W, g.Bias
	return nil
}

// svmGob is the exported wire form of a trained SVM.
type svmGob struct {
	Cfg       SVMConfig
	W         []float64
	Bias      float64
	Converged bool
	Objective float64
	Epochs    int
}

// GobEncode implements gob.GobEncoder for trained-pipeline serialization.
func (s *SVM) GobEncode() ([]byte, error) {
	if s.w == nil {
		return nil, ErrNotFitted
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(svmGob{
		Cfg: s.cfg, W: s.w, Bias: s.bias,
		Converged: s.converged, Objective: s.objective, Epochs: s.epochs,
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (s *SVM) GobDecode(b []byte) error {
	var g svmGob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&g); err != nil {
		return err
	}
	s.cfg, s.w, s.bias = g.Cfg, g.W, g.Bias
	s.converged, s.objective, s.epochs = g.Converged, g.Objective, g.Epochs
	return nil
}
