// Package linear implements the linear base classifiers used by the paper's
// bagging ensembles: logistic regression trained by mini-batch SGD with L2
// regularisation, and a linear SVM trained with the Pegasos sub-gradient
// solver. Both expose raw decision scores in addition to hard labels so
// they can feed Platt scaling and the uncertainty estimator.
package linear

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"trusthmd/pkg/linalg"
)

// ErrNotFitted reports prediction before training.
var ErrNotFitted = errors.New("linear: not fitted")

// LogisticConfig controls logistic-regression training. Zero values fall
// back to the documented defaults at Fit time.
type LogisticConfig struct {
	// LearningRate is the SGD step size (default 0.1).
	LearningRate float64
	// Epochs is the number of passes over the data (default 100).
	Epochs int
	// Batch is the mini-batch size (default 32).
	Batch int
	// L2 is the ridge penalty coefficient (default 1e-4).
	L2 float64
	// Tol stops training early when the epoch's mean absolute weight update
	// falls below it (default 1e-6).
	Tol float64
	// Seed drives shuffling (and any weight initialisation noise when
	// RandomInit is set).
	Seed int64
	// RandomInit initialises weights from N(0, 0.1) instead of zeros. Used
	// by the deep-ensembles-style diversity ablation (A3).
	RandomInit bool
}

// Logistic is a binary logistic-regression classifier.
type Logistic struct {
	cfg  LogisticConfig
	w    []float64
	bias float64
}

// NewLogistic returns an untrained logistic regression.
func NewLogistic(cfg LogisticConfig) *Logistic {
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 100
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 32
	}
	if cfg.L2 < 0 {
		cfg.L2 = 0
	} else if cfg.L2 == 0 {
		cfg.L2 = 1e-4
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}
	return &Logistic{cfg: cfg}
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Fit trains on X (one sample per row) with binary labels y in {0, 1}.
func (l *Logistic) Fit(X *linalg.Matrix, y []int) error {
	if err := checkBinary(X, y); err != nil {
		return fmt.Errorf("logistic: %w", err)
	}
	n, d := X.Rows(), X.Cols()
	rng := rand.New(rand.NewSource(l.cfg.Seed))
	l.w = make([]float64, d)
	l.bias = 0
	if l.cfg.RandomInit {
		for j := range l.w {
			l.w[j] = rng.NormFloat64() * 0.1
		}
		l.bias = rng.NormFloat64() * 0.1
	}

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	grad := make([]float64, d)

	for epoch := 0; epoch < l.cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var updateMag float64
		for start := 0; start < n; start += l.cfg.Batch {
			end := start + l.cfg.Batch
			if end > n {
				end = n
			}
			for j := range grad {
				grad[j] = 0
			}
			var gradB float64
			for _, i := range idx[start:end] {
				row := X.Row(i)
				p := sigmoid(linalg.Dot(l.w, row) + l.bias)
				err := p - float64(y[i])
				linalg.AddScaled(grad, err, row)
				gradB += err
			}
			scale := l.cfg.LearningRate / float64(end-start)
			for j := range l.w {
				step := scale*grad[j] + l.cfg.LearningRate*l.cfg.L2*l.w[j]
				l.w[j] -= step
				updateMag += math.Abs(step)
			}
			l.bias -= scale * gradB
			updateMag += math.Abs(scale * gradB)
		}
		if updateMag/float64(d+1) < l.cfg.Tol {
			break
		}
	}
	return nil
}

// Score returns the pre-sigmoid decision value w·x + b.
func (l *Logistic) Score(x []float64) float64 {
	if l.w == nil {
		panic(ErrNotFitted)
	}
	if len(x) != len(l.w) {
		panic(fmt.Sprintf("logistic: input has %d features, trained on %d", len(x), len(l.w)))
	}
	return linalg.Dot(l.w, x) + l.bias
}

// Proba returns P(y=1|x) through the logistic link.
func (l *Logistic) Proba(x []float64) float64 { return sigmoid(l.Score(x)) }

// PredictProba returns the class distribution [P(y=0), P(y=1)], satisfying
// the ensemble.ProbClassifier contract so logistic ensembles can average
// soft posteriors (Eq. 3).
func (l *Logistic) PredictProba(x []float64) []float64 {
	p := l.Proba(x)
	return []float64{1 - p, p}
}

// Predict returns the hard label (threshold 0.5).
func (l *Logistic) Predict(x []float64) int {
	if l.Proba(x) >= 0.5 {
		return 1
	}
	return 0
}

// Weights returns a copy of the trained weight vector and the bias.
func (l *Logistic) Weights() ([]float64, float64) {
	if l.w == nil {
		return nil, 0
	}
	return linalg.CloneVec(l.w), l.bias
}

func checkBinary(X *linalg.Matrix, y []int) error {
	if X.Rows() == 0 {
		return errors.New("empty training set")
	}
	if X.Rows() != len(y) {
		return fmt.Errorf("%d rows but %d labels", X.Rows(), len(y))
	}
	seen := [2]bool{}
	for i, lab := range y {
		if lab != 0 && lab != 1 {
			return fmt.Errorf("label %d at sample %d is not binary", lab, i)
		}
		seen[lab] = true
	}
	if !seen[0] || !seen[1] {
		return errors.New("training set must contain both classes")
	}
	return nil
}
