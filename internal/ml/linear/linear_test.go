package linear

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trusthmd/pkg/linalg"
)

// separable builds two linearly separable Gaussian blobs along x0.
func separable(rng *rand.Rand, n int, gap float64) (*linalg.Matrix, []int) {
	rows := make([][]float64, n)
	y := make([]int, n)
	for i := range rows {
		cls := i % 2
		cx := -gap
		if cls == 1 {
			cx = gap
		}
		rows[i] = []float64{cx + rng.NormFloat64()*0.5, rng.NormFloat64() * 0.5}
		y[i] = cls
	}
	return linalg.MustFromRows(rows), y
}

func trainAccuracy(predict func([]float64) int, X *linalg.Matrix, y []int) float64 {
	correct := 0
	for i := 0; i < X.Rows(); i++ {
		if predict(X.Row(i)) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(X.Rows())
}

func TestLogisticSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := separable(rng, 200, 2)
	l := NewLogistic(LogisticConfig{Seed: 1})
	if err := l.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(l.Predict, X, y); acc < 0.98 {
		t.Fatalf("accuracy %v", acc)
	}
}

func TestLogisticProbaMonotoneInScore(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := separable(rng, 100, 2)
	l := NewLogistic(LogisticConfig{Seed: 2})
	if err := l.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pLow := l.Proba([]float64{-5, 0})
	pHigh := l.Proba([]float64{5, 0})
	if !(pLow < 0.1 && pHigh > 0.9) {
		t.Fatalf("probas %v %v", pLow, pHigh)
	}
	// Score sign agrees with prediction.
	for _, x := range [][]float64{{-1, 0.3}, {2, -0.7}, {0.01, 0}} {
		pred := l.Predict(x)
		if (l.Score(x) >= 0) != (pred == 1) {
			t.Fatalf("score/predict disagree at %v", x)
		}
	}
}

func TestLogisticWeights(t *testing.T) {
	l := NewLogistic(LogisticConfig{})
	if w, b := l.Weights(); w != nil || b != 0 {
		t.Fatal("unfitted weights should be nil")
	}
	rng := rand.New(rand.NewSource(3))
	X, y := separable(rng, 60, 2)
	if err := l.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	w, _ := l.Weights()
	if len(w) != 2 {
		t.Fatalf("weights %v", w)
	}
	if w[0] <= 0 {
		t.Fatalf("x0 separates the classes positively, got weight %v", w[0])
	}
	w[0] = 999 // must be a copy
	w2, _ := l.Weights()
	if w2[0] == 999 {
		t.Fatal("Weights must return a copy")
	}
}

func TestLogisticRandomInitDiversity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, y := separable(rng, 60, 0.3) // overlapping classes
	wA, _ := fitLR(t, X, y, LogisticConfig{Seed: 1, RandomInit: true, Epochs: 5})
	wB, _ := fitLR(t, X, y, LogisticConfig{Seed: 2, RandomInit: true, Epochs: 5})
	same := true
	for j := range wA {
		if math.Abs(wA[j]-wB[j]) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Fatal("different random inits should give different early-stopped weights")
	}
}

func fitLR(t *testing.T, X *linalg.Matrix, y []int, cfg LogisticConfig) ([]float64, float64) {
	t.Helper()
	l := NewLogistic(cfg)
	if err := l.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	return l.Weights()
}

func TestLogisticFitErrors(t *testing.T) {
	l := NewLogistic(LogisticConfig{})
	if err := l.Fit(linalg.New(0, 1), nil); err == nil {
		t.Fatal("expected empty error")
	}
	if err := l.Fit(linalg.New(2, 1), []int{0}); err == nil {
		t.Fatal("expected length error")
	}
	if err := l.Fit(linalg.MustFromRows([][]float64{{1}, {2}}), []int{0, 2}); err == nil {
		t.Fatal("expected label error")
	}
	if err := l.Fit(linalg.MustFromRows([][]float64{{1}, {2}}), []int{0, 0}); err == nil {
		t.Fatal("expected single-class error")
	}
}

func TestLogisticPanics(t *testing.T) {
	l := NewLogistic(LogisticConfig{})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected unfitted panic")
			}
		}()
		l.Score([]float64{1})
	}()
	rng := rand.New(rand.NewSource(5))
	X, y := separable(rng, 40, 2)
	if err := l.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected dimension panic")
			}
		}()
		l.Score([]float64{1, 2, 3})
	}()
}

func TestSVMSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, y := separable(rng, 200, 2)
	s := NewSVM(SVMConfig{Seed: 6})
	if err := s.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(s.Predict, X, y); acc < 0.98 {
		t.Fatalf("accuracy %v", acc)
	}
	if !s.Converged() {
		t.Fatal("separable SVM should converge")
	}
	if s.EpochsRun() < 1 || s.Objective() < 0 {
		t.Fatalf("diagnostics epochs=%d obj=%v", s.EpochsRun(), s.Objective())
	}
}

func TestSVMNonConvergenceOnOverlap(t *testing.T) {
	// Heavily overlapping classes keep the hinge objective high; with
	// MaxObjective set low, Fit must report ErrNoConvergence, reproducing
	// the paper's HPC observation.
	rng := rand.New(rand.NewSource(7))
	n := 300
	rows := make([][]float64, n)
	y := make([]int, n)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		y[i] = i % 2 // labels independent of features
	}
	X := linalg.MustFromRows(rows)
	s := NewSVM(SVMConfig{Seed: 7, MaxObjective: 0.2, Epochs: 30})
	err := s.Fit(X, y)
	var nc *ErrNoConvergence
	if !errors.As(err, &nc) {
		t.Fatalf("expected ErrNoConvergence, got %v", err)
	}
	if nc.Error() == "" {
		t.Fatal("empty error message")
	}
	if s.Converged() {
		t.Fatal("Converged() must be false")
	}
	// The model must still predict without panicking.
	_ = s.Predict([]float64{0, 0})
}

func TestSVMScorePredictConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	X, y := separable(rng, 100, 2)
	s := NewSVM(SVMConfig{Seed: 8})
	if err := s.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		x := []float64{math.Mod(a, 10), math.Mod(b, 10)}
		return (s.Score(x) >= 0) == (s.Predict(x) == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSVMStability(t *testing.T) {
	// Max-margin solutions on bootstraps of clean data should be near
	// identical — the mechanism behind the paper's "SVM uncertainty is
	// poor" finding. Check two runs with different sampling seeds classify
	// a probe grid identically.
	rng := rand.New(rand.NewSource(9))
	X, y := separable(rng, 300, 3)
	a := NewSVM(SVMConfig{Seed: 1})
	b := NewSVM(SVMConfig{Seed: 2})
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for gx := -6.0; gx <= 6; gx += 0.5 {
		for gy := -1.5; gy <= 1.5; gy += 0.5 {
			x := []float64{gx, gy}
			if math.Abs(gx) < 1 {
				continue // skip the thin uncertain band at the margin
			}
			if a.Predict(x) != b.Predict(x) {
				t.Fatalf("SVM unstable at (%v,%v)", gx, gy)
			}
		}
	}
}

func TestSVMFitErrors(t *testing.T) {
	s := NewSVM(SVMConfig{})
	if err := s.Fit(linalg.New(0, 1), nil); err == nil {
		t.Fatal("expected empty error")
	}
	if err := s.Fit(linalg.MustFromRows([][]float64{{1}, {2}}), []int{1, 1}); err == nil {
		t.Fatal("expected single-class error")
	}
}

func TestSVMPanics(t *testing.T) {
	s := NewSVM(SVMConfig{})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected unfitted panic")
			}
		}()
		s.Score([]float64{1})
	}()
	if w, b := s.Weights(); w != nil || b != 0 {
		t.Fatal("unfitted weights should be nil")
	}
}

func TestSigmoid(t *testing.T) {
	if sigmoid(0) != 0.5 {
		t.Fatal("sigmoid(0)")
	}
	if sigmoid(100) <= 0.999 || sigmoid(-100) >= 0.001 {
		t.Fatal("sigmoid saturation")
	}
	// Numerically stable for large negative inputs.
	if v := sigmoid(-1000); math.IsNaN(v) || v != 0 {
		t.Fatalf("sigmoid(-1000)=%v", v)
	}
}
