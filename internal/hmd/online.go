package hmd

import (
	"fmt"

	"trusthmd/internal/core"
	"trusthmd/internal/feature"
)

// Online is the streaming trusted detector: it consumes DVFS states one
// sample at a time, maintains a sliding window, and every Stride samples
// extracts features and produces a trusted decision — the deployment mode
// the paper's title refers to ("online uncertainty estimation").
//
// Online is not safe for concurrent use; give each telemetry stream its own
// instance.
type Online struct {
	pipeline  *Pipeline
	threshold float64
	levels    int
	window    []int
	stride    int
	sinceLast int

	// Stats accumulates decision counts for monitoring dashboards.
	Stats OnlineStats
}

// OnlineStats tallies the stream's decisions.
type OnlineStats struct {
	Benign, Malware, Rejected int
	Windows                   int
}

// Total returns the number of decisions made.
func (s OnlineStats) Total() int { return s.Benign + s.Malware + s.Rejected }

// RejectedFraction returns the share of windows rejected, or 0 before any
// decision.
func (s OnlineStats) RejectedFraction() float64 {
	if s.Total() == 0 {
		return 0
	}
	return float64(s.Rejected) / float64(s.Total())
}

// OnlineConfig parameterises the streaming detector.
type OnlineConfig struct {
	// Threshold is the entropy rejection threshold (the paper's DVFS
	// operating point is 0.40).
	Threshold float64
	// Levels is the DVFS ladder size of the telemetry source.
	Levels int
	// Window is the number of states per assessment window.
	Window int
	// Stride is how many new samples arrive between assessments; 0 means
	// a full window (non-overlapping windows).
	Stride int
}

// NewOnline wraps a trained pipeline into a streaming detector.
func NewOnline(p *Pipeline, cfg OnlineConfig) (*Online, error) {
	if p == nil {
		return nil, fmt.Errorf("hmd: online needs a trained pipeline")
	}
	if cfg.Levels < 2 {
		return nil, fmt.Errorf("hmd: online needs >=2 levels, got %d", cfg.Levels)
	}
	if cfg.Window < 2 {
		return nil, fmt.Errorf("hmd: online needs window >=2, got %d", cfg.Window)
	}
	if cfg.Threshold < 0 {
		return nil, fmt.Errorf("hmd: negative threshold %v", cfg.Threshold)
	}
	stride := cfg.Stride
	if stride <= 0 {
		stride = cfg.Window
	}
	return &Online{
		pipeline:  p,
		threshold: cfg.Threshold,
		levels:    cfg.Levels,
		window:    make([]int, 0, cfg.Window),
		stride:    stride,
	}, nil
}

// OnlineDecision is one emitted decision with its provenance.
type OnlineDecision struct {
	Decision   core.Decision
	Assessment Assessment
}

// Push feeds one DVFS state sample. When a full window is available and the
// stride has elapsed, it returns a decision; otherwise ok is false.
func (o *Online) Push(state int) (dec OnlineDecision, ok bool, err error) {
	if state < 0 || state >= o.levels {
		return OnlineDecision{}, false, fmt.Errorf("hmd: state %d outside [0,%d)", state, o.levels)
	}
	if len(o.window) == cap(o.window) {
		copy(o.window, o.window[1:])
		o.window = o.window[:len(o.window)-1]
	}
	o.window = append(o.window, state)
	o.sinceLast++
	if len(o.window) < cap(o.window) || o.sinceLast < o.stride {
		return OnlineDecision{}, false, nil
	}
	o.sinceLast = 0

	feats, err := feature.DVFSVector(o.window, o.levels)
	if err != nil {
		return OnlineDecision{}, false, fmt.Errorf("hmd: online features: %w", err)
	}
	d, a, err := o.pipeline.Decide(feats, o.threshold)
	if err != nil {
		return OnlineDecision{}, false, err
	}
	o.Stats.Windows++
	switch d {
	case core.DecideBenign:
		o.Stats.Benign++
	case core.DecideMalware:
		o.Stats.Malware++
	default:
		o.Stats.Rejected++
	}
	return OnlineDecision{Decision: d, Assessment: a}, true, nil
}
