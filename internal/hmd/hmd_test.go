package hmd

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"trusthmd/internal/ensemble"
	"trusthmd/internal/gen"
	"trusthmd/internal/ml/linear"
	"trusthmd/internal/ml/tree"
	"trusthmd/pkg/dataset"
)

func dvfsSplits(t *testing.T) gen.Splits {
	t.Helper()
	s, err := gen.DVFSWithSizes(3, gen.Sizes{Train: 280, Test: 140, Unknown: 40})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func rfFactory(seed int64) ensemble.Classifier {
	return tree.New(tree.Config{MaxFeatures: -1, Seed: seed})
}

func lrFactory(seed int64) ensemble.Classifier {
	return linear.NewLogistic(linear.LogisticConfig{Seed: seed, Epochs: 20, Batch: 16})
}

func TestTrainPredictAssess(t *testing.T) {
	s := dvfsSplits(t)
	p, err := Train(s.Train, Config{NewMember: rfFactory, M: 11, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < s.Test.Len(); i++ {
		smp := s.Test.At(i)
		pred, err := p.Predict(smp.Features)
		if err != nil {
			t.Fatal(err)
		}
		if pred == smp.Label {
			correct++
		}
		a, err := p.Assess(smp.Features)
		if err != nil {
			t.Fatal(err)
		}
		if a.Prediction != pred {
			t.Fatal("Assess and Predict must agree")
		}
		if a.Entropy < 0 || a.Entropy > 1 {
			t.Fatalf("entropy %v out of range", a.Entropy)
		}
		var sum float64
		for _, v := range a.VoteDist {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("vote dist sums to %v", sum)
		}
	}
	if frac := float64(correct) / float64(s.Test.Len()); frac < 0.9 {
		t.Fatalf("test accuracy %v", frac)
	}
}

func TestTrainWithPCA(t *testing.T) {
	s := dvfsSplits(t)
	p, err := Train(s.Train, Config{NewMember: rfFactory, M: 7, Seed: 2, PCAComponents: 5})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Assess(s.Test.At(0).Features)
	if err != nil {
		t.Fatal(err)
	}
	if a.Entropy < 0 {
		t.Fatal("bad entropy")
	}
	// PCA with too many components errors.
	if _, err := Train(s.Train, Config{NewMember: rfFactory, M: 3, PCAComponents: 1000}); err == nil {
		t.Fatal("expected pca error")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Config{NewMember: rfFactory}); err == nil {
		t.Fatal("expected nil dataset error")
	}
	if _, err := Train(dataset.New(2), Config{NewMember: rfFactory}); err == nil {
		t.Fatal("expected empty dataset error")
	}
	s := dvfsSplits(t)
	if _, err := Train(s.Train, Config{}); err == nil {
		t.Fatal("expected missing factory error")
	}
}

func TestProjectBatchMatchesProject(t *testing.T) {
	s := dvfsSplits(t)
	for _, pcaK := range []int{0, 5} {
		p, err := Train(s.Train, Config{NewMember: rfFactory, M: 3, Seed: 3, PCAComponents: pcaK})
		if err != nil {
			t.Fatal(err)
		}
		Z, err := p.ProjectBatch(s.Test.X())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < s.Test.Len(); i++ {
			z, err := p.Project(s.Test.At(i).Features)
			if err != nil {
				t.Fatal(err)
			}
			row := Z.Row(i)
			if len(row) != len(z) {
				t.Fatalf("pca=%d sample %d: dim %d vs %d", pcaK, i, len(row), len(z))
			}
			for j := range z {
				if z[j] != row[j] {
					t.Fatalf("pca=%d sample %d feature %d: batch %v vs vec %v", pcaK, i, j, row[j], z[j])
				}
			}
		}
	}
}

func TestAssessDecomposeProjected(t *testing.T) {
	s := dvfsSplits(t)
	p, err := Train(s.Train, Config{NewMember: lrFactory, M: 9, Seed: 3, MaxFeatures: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	x := s.Unknown.At(0).Features
	z, err := p.Project(x)
	if err != nil {
		t.Fatal(err)
	}
	a, dec, err := p.AssessDecomposeProjected(z)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := p.AssessProjected(z)
	if err != nil {
		t.Fatal(err)
	}
	if a.Prediction != plain.Prediction || a.Entropy != plain.Entropy {
		t.Fatal("decomposing assessment must not change the assessment")
	}
	want, err := p.DecomposeUncertainty(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.Total-want.Total) > 1e-12 || math.Abs(dec.Aleatoric-want.Aleatoric) > 1e-12 {
		t.Fatalf("one-pass decomposition %+v diverged from reference %+v", dec, want)
	}
}

func TestPosterior(t *testing.T) {
	s := dvfsSplits(t)
	p, err := Train(s.Train, Config{NewMember: rfFactory, M: 9, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	post, err := p.Posterior(s.Test.At(0).Features)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range post {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("posterior sums to %v", sum)
	}
}

func TestTruncated(t *testing.T) {
	s := dvfsSplits(t)
	p, err := Train(s.Train, Config{NewMember: rfFactory, M: 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	x := s.Unknown.At(0).Features
	t5, err := p.Truncated(5)
	if err != nil {
		t.Fatal(err)
	}
	a5, err := t5.Assess(x)
	if err != nil {
		t.Fatal(err)
	}
	tFull, err := p.Truncated(20)
	if err != nil {
		t.Fatal(err)
	}
	aFull, err := tFull.Assess(x)
	if err != nil {
		t.Fatal(err)
	}
	full, err := p.Assess(x)
	if err != nil {
		t.Fatal(err)
	}
	if aFull.Entropy != full.Entropy || aFull.Prediction != full.Prediction {
		t.Fatal("full truncation must equal Assess")
	}
	if a5.Entropy < 0 || a5.Entropy > 1 {
		t.Fatal("bad truncated entropy")
	}
	if _, err := p.Truncated(0); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := p.Truncated(21); err == nil {
		t.Fatal("expected range error")
	}
}

func TestDimensionMismatch(t *testing.T) {
	s := dvfsSplits(t)
	p, err := Train(s.Train, Config{NewMember: rfFactory, M: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict([]float64{1, 2}); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := p.Assess([]float64{1}); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := p.Posterior([]float64{1}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestSVMNonConvergencePropagates(t *testing.T) {
	// Label-noise data: SVM with a strict objective must fail to converge.
	rng := rand.New(rand.NewSource(8))
	d := dataset.New(2)
	for i := 0; i < 200; i++ {
		if err := d.Add(dataset.Sample{
			Features: []float64{rng.NormFloat64(), rng.NormFloat64()},
			Label:    i % 2,
			App:      "noise",
		}); err != nil {
			t.Fatal(err)
		}
	}
	svm := func(seed int64) ensemble.Classifier {
		return linear.NewSVM(linear.SVMConfig{Seed: seed, Epochs: 100, MaxObjective: 0.2})
	}
	_, err := Train(d, Config{NewMember: svm, M: 3, Seed: 8})
	if err == nil {
		t.Fatal("expected non-convergence")
	}
	var nc *linear.ErrNoConvergence
	if !errors.As(err, &nc) {
		t.Fatalf("error %v should wrap linear.ErrNoConvergence", err)
	}
}

func TestEnsembleAccessor(t *testing.T) {
	s := dvfsSplits(t)
	p, err := Train(s.Train, Config{NewMember: rfFactory, M: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if p.Ensemble().Size() != 5 || p.Members() != 5 {
		t.Fatal("ensemble accessor")
	}
}

func TestDiversityModes(t *testing.T) {
	s := dvfsSplits(t)
	for _, mode := range []ensemble.Diversity{ensemble.Bootstrap, ensemble.RandomInit} {
		p, err := Train(s.Train, Config{NewMember: lrFactory, M: 5, Seed: 10, Diversity: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if _, err := p.Predict(s.Test.At(0).Features); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPipelineGobRoundTrip(t *testing.T) {
	s := dvfsSplits(t)
	p, err := Train(s.Train, Config{NewMember: rfFactory, M: 7, Seed: 11, PCAComponents: 6})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := p.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var back Pipeline
	if err := back.GobDecode(blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Test.Len(); i++ {
		x := s.Test.At(i).Features
		a, err := p.Assess(x)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Assess(x)
		if err != nil {
			t.Fatal(err)
		}
		if a.Prediction != b.Prediction || a.Entropy != b.Entropy {
			t.Fatalf("sample %d: decoded pipeline diverged", i)
		}
	}
	if back.Members() != p.Members() {
		t.Fatal("member count lost in round trip")
	}
}
