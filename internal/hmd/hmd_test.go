package hmd

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"trusthmd/internal/core"
	"trusthmd/internal/dataset"
	"trusthmd/internal/ensemble"
	"trusthmd/internal/gen"
	"trusthmd/internal/ml/linear"
)

func dvfsSplits(t *testing.T) gen.Splits {
	t.Helper()
	s, err := gen.DVFSWithSizes(3, gen.Sizes{Train: 280, Test: 140, Unknown: 40})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestModelString(t *testing.T) {
	if RandomForest.String() != "RF" || LogisticRegression.String() != "LR" || SVM.String() != "SVM" {
		t.Fatal("model strings")
	}
	if Model(9).String() == "" {
		t.Fatal("unknown model should render")
	}
}

func TestTrainPredictAssess(t *testing.T) {
	s := dvfsSplits(t)
	p, err := Train(s.Train, Config{Model: RandomForest, M: 11, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < s.Test.Len(); i++ {
		smp := s.Test.At(i)
		pred, err := p.Predict(smp.Features)
		if err != nil {
			t.Fatal(err)
		}
		if pred == smp.Label {
			correct++
		}
		a, err := p.Assess(smp.Features)
		if err != nil {
			t.Fatal(err)
		}
		if a.Prediction != pred {
			t.Fatal("Assess and Predict must agree")
		}
		if a.Entropy < 0 || a.Entropy > 1 {
			t.Fatalf("entropy %v out of range", a.Entropy)
		}
		var sum float64
		for _, v := range a.VoteDist {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("vote dist sums to %v", sum)
		}
	}
	if frac := float64(correct) / float64(s.Test.Len()); frac < 0.9 {
		t.Fatalf("test accuracy %v", frac)
	}
}

func TestTrainWithPCA(t *testing.T) {
	s := dvfsSplits(t)
	p, err := Train(s.Train, Config{Model: RandomForest, M: 7, Seed: 2, PCAComponents: 5})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Assess(s.Test.At(0).Features)
	if err != nil {
		t.Fatal(err)
	}
	if a.Entropy < 0 {
		t.Fatal("bad entropy")
	}
	// PCA with too many components errors.
	if _, err := Train(s.Train, Config{Model: RandomForest, M: 3, PCAComponents: 1000}); err == nil {
		t.Fatal("expected pca error")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Config{}); err == nil {
		t.Fatal("expected nil dataset error")
	}
	if _, err := Train(dataset.New(2), Config{}); err == nil {
		t.Fatal("expected empty dataset error")
	}
	s := dvfsSplits(t)
	if _, err := Train(s.Train, Config{Model: Model(42)}); err == nil {
		t.Fatal("expected unknown model error")
	}
}

func TestAssessDataset(t *testing.T) {
	s := dvfsSplits(t)
	p, err := Train(s.Train, Config{Model: LogisticRegression, M: 9, Seed: 3, MaxFeatures: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	preds, entropies, err := p.AssessDataset(s.Test)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != s.Test.Len() || len(entropies) != s.Test.Len() {
		t.Fatal("length mismatch")
	}
	if _, _, err := p.AssessDataset(nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, _, err := p.AssessDataset(dataset.New(2)); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestDecide(t *testing.T) {
	s := dvfsSplits(t)
	p, err := Train(s.Train, Config{Model: RandomForest, M: 9, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	x := s.Test.At(0).Features
	d, a, err := p.Decide(x, 1.0) // threshold 1.0 accepts everything
	if err != nil {
		t.Fatal(err)
	}
	if d == core.DecideReject {
		t.Fatal("threshold 1.0 must accept")
	}
	if a.Prediction != 0 && a.Prediction != 1 {
		t.Fatal("bad prediction")
	}
	d, _, err = p.Decide(x, -0.001) // impossible threshold rejects all
	if err != nil {
		t.Fatal(err)
	}
	if d != core.DecideReject {
		t.Fatal("negative threshold must reject")
	}
}

func TestPosterior(t *testing.T) {
	s := dvfsSplits(t)
	p, err := Train(s.Train, Config{Model: RandomForest, M: 9, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	post, err := p.Posterior(s.Test.At(0).Features)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range post {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("posterior sums to %v", sum)
	}
}

func TestTruncatedAssess(t *testing.T) {
	s := dvfsSplits(t)
	p, err := Train(s.Train, Config{Model: RandomForest, M: 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	x := s.Unknown.At(0).Features
	a5, err := p.TruncatedAssess(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	aFull, err := p.TruncatedAssess(x, 20)
	if err != nil {
		t.Fatal(err)
	}
	full, err := p.Assess(x)
	if err != nil {
		t.Fatal(err)
	}
	if aFull.Entropy != full.Entropy || aFull.Prediction != full.Prediction {
		t.Fatal("full truncation must equal Assess")
	}
	if a5.Entropy < 0 || a5.Entropy > 1 {
		t.Fatal("bad truncated entropy")
	}
	if _, err := p.TruncatedAssess(x, 0); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := p.TruncatedAssess(x, 21); err == nil {
		t.Fatal("expected range error")
	}
}

func TestDimensionMismatch(t *testing.T) {
	s := dvfsSplits(t)
	p, err := Train(s.Train, Config{Model: RandomForest, M: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict([]float64{1, 2}); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := p.Assess([]float64{1}); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := p.Posterior([]float64{1}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestSVMNonConvergencePropagates(t *testing.T) {
	// Label-noise data: SVM with a strict objective must fail to converge.
	rng := rand.New(rand.NewSource(8))
	d := dataset.New(2)
	for i := 0; i < 200; i++ {
		if err := d.Add(dataset.Sample{
			Features: []float64{rng.NormFloat64(), rng.NormFloat64()},
			Label:    i % 2,
			App:      "noise",
		}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := Train(d, Config{Model: SVM, M: 3, Seed: 8, SVMMaxObjective: 0.2})
	if err == nil {
		t.Fatal("expected non-convergence")
	}
	var nc *linear.ErrNoConvergence
	if !errors.As(err, &nc) {
		t.Fatalf("error %v should wrap linear.ErrNoConvergence", err)
	}
}

func TestEnsembleAccessor(t *testing.T) {
	s := dvfsSplits(t)
	p, err := Train(s.Train, Config{Model: RandomForest, M: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if p.Ensemble().Size() != 5 {
		t.Fatal("ensemble accessor")
	}
}

func TestDiversityModes(t *testing.T) {
	s := dvfsSplits(t)
	for _, mode := range []ensemble.Diversity{ensemble.Bootstrap, ensemble.RandomInit} {
		p, err := Train(s.Train, Config{Model: LogisticRegression, M: 5, Seed: 10, Diversity: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if _, err := p.Predict(s.Test.At(0).Features); err != nil {
			t.Fatal(err)
		}
	}
}
