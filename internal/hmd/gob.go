package hmd

import (
	"bytes"
	"encoding/gob"
	"errors"

	"trusthmd/internal/core"
	"trusthmd/internal/ensemble"
	"trusthmd/internal/reduce"
	"trusthmd/pkg/dataset"
)

// pipelineGob is the exported wire form of a trained Pipeline. The member
// factory is not serialized: a decoded pipeline can assess but not refit —
// retraining goes back through the model registry in pkg/detector.
type pipelineGob struct {
	M             int
	PCAComponents int
	Seed          int64
	Diversity     ensemble.Diversity
	MaxSamples    float64
	MaxFeatures   float64
	Workers       int
	Scaler        *dataset.Scaler
	PCA           *reduce.PCA
	Ens           *ensemble.Bagging
}

// GobEncode implements gob.GobEncoder so cmd/trusthmd can train once and
// serve many (detector.Save / detector.Load).
func (p *Pipeline) GobEncode() ([]byte, error) {
	if p.ens == nil {
		return nil, errors.New("hmd: cannot encode an untrained pipeline")
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(pipelineGob{
		M:             p.cfg.M,
		PCAComponents: p.cfg.PCAComponents,
		Seed:          p.cfg.Seed,
		Diversity:     p.cfg.Diversity,
		MaxSamples:    p.cfg.MaxSamples,
		MaxFeatures:   p.cfg.MaxFeatures,
		Workers:       p.cfg.Workers,
		Scaler:        p.scaler,
		PCA:           p.pca,
		Ens:           p.ens,
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (p *Pipeline) GobDecode(b []byte) error {
	var g pipelineGob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&g); err != nil {
		return err
	}
	if g.Scaler == nil || g.Ens == nil {
		return errors.New("hmd: corrupt pipeline gob")
	}
	p.cfg = Config{
		M:             g.M,
		PCAComponents: g.PCAComponents,
		Seed:          g.Seed,
		Diversity:     g.Diversity,
		MaxSamples:    g.MaxSamples,
		MaxFeatures:   g.MaxFeatures,
		Workers:       g.Workers,
	}
	p.scaler = g.Scaler
	p.pca = g.PCA
	p.ens = g.Ens
	p.est = core.Estimator{Classes: dataset.NumClasses}
	return nil
}
