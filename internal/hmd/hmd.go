// Package hmd assembles the full detector pipelines of the paper's Fig. 1.
//
// The untrusted (conventional) pipeline is feature scaling → PCA → bagging
// ensemble → majority-vote label. The trusted pipeline adds the
// uncertainty estimator of package core: every prediction carries the
// entropy of the ensemble's vote distribution, and a Rejector turns
// (label, entropy) into Benign / Malware / Reject decisions.
package hmd

import (
	"errors"
	"fmt"

	"trusthmd/internal/core"
	"trusthmd/internal/dataset"
	"trusthmd/internal/ensemble"
	"trusthmd/internal/ml/bayes"
	"trusthmd/internal/ml/knn"
	"trusthmd/internal/ml/linear"
	"trusthmd/internal/ml/tree"
	"trusthmd/internal/reduce"
)

// Model selects the base classifier family of the bagging ensemble.
type Model int

const (
	// RandomForest bags fully grown CART trees with sqrt(d) feature
	// sampling — the paper's best performer.
	RandomForest Model = iota
	// LogisticRegression bags SGD-trained logistic regressions.
	LogisticRegression
	// SVM bags Pegasos-trained linear SVMs. On heavily overlapping data
	// the hinge objective stays high and training reports
	// *linear.ErrNoConvergence, reproducing the paper's HPC observation.
	SVM
	// NaiveBayes bags Gaussian Naive Bayes models (extension: one of the
	// families in the Zhou et al. HPC study; used by ablation A4).
	NaiveBayes
	// KNN bags k-nearest-neighbour models (extension, ablation A4).
	KNN
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case RandomForest:
		return "RF"
	case LogisticRegression:
		return "LR"
	case SVM:
		return "SVM"
	case NaiveBayes:
		return "NB"
	case KNN:
		return "KNN"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Config controls pipeline training.
type Config struct {
	// Model is the base classifier family.
	Model Model
	// M is the ensemble size (the paper settles on ~20-25; default 25).
	M int
	// PCAComponents is the dimensionality after PCA; 0 skips PCA.
	PCAComponents int
	// Seed drives all randomness in the pipeline.
	Seed int64
	// Diversity selects bagging vs random-restart (default Bootstrap).
	Diversity ensemble.Diversity
	// MaxSamples is the bootstrap replicate fraction (0 = full size).
	MaxSamples float64
	// MaxFeatures is the per-member feature subset fraction (0 = all). The
	// experiments use random feature subspaces for the linear ensembles,
	// whose members are otherwise nearly identical under full bootstraps.
	MaxFeatures float64
	// SVMMaxObjective propagates to linear.SVMConfig.MaxObjective when
	// Model == SVM (0 disables the convergence check).
	SVMMaxObjective float64
	// TreeMaxDepth / TreeMinLeaf propagate to the CART members when Model
	// == RandomForest (0 keeps the defaults: unlimited depth, leaf size 1).
	// Limited trees emit soft leaf posteriors, which the uncertainty
	// decomposition (DecomposeUncertainty) needs to observe aleatoric mass.
	TreeMaxDepth int
	TreeMinLeaf  int
	// Workers caps training parallelism; 0 means GOMAXPROCS.
	Workers int
}

// Pipeline is a trained trusted HMD.
type Pipeline struct {
	cfg    Config
	scaler *dataset.Scaler
	pca    *reduce.PCA
	ens    *ensemble.Bagging
	est    core.Estimator
}

// Assessment is the trusted HMD's per-input output: the raw prediction,
// the vote-entropy uncertainty, and the vote distribution behind it.
type Assessment struct {
	Prediction int
	Entropy    float64
	VoteDist   []float64
}

// Train fits the full pipeline on the training split.
func Train(train *dataset.Dataset, cfg Config) (*Pipeline, error) {
	if train == nil || train.Len() == 0 {
		return nil, errors.New("hmd: empty training set")
	}
	if cfg.M <= 0 {
		cfg.M = 25
	}
	X := train.X()
	scaler, err := dataset.FitScaler(X)
	if err != nil {
		return nil, fmt.Errorf("hmd: scaler: %w", err)
	}
	Xs, err := scaler.Transform(X)
	if err != nil {
		return nil, fmt.Errorf("hmd: scale: %w", err)
	}

	var pca *reduce.PCA
	if cfg.PCAComponents > 0 {
		pca, err = reduce.FitPCA(Xs, cfg.PCAComponents)
		if err != nil {
			return nil, fmt.Errorf("hmd: pca: %w", err)
		}
		Xs, err = pca.Transform(Xs)
		if err != nil {
			return nil, fmt.Errorf("hmd: pca transform: %w", err)
		}
	}

	factory, err := factoryFor(cfg)
	if err != nil {
		return nil, err
	}
	ens := ensemble.New(ensemble.Config{
		M:           cfg.M,
		New:         factory,
		Diversity:   cfg.Diversity,
		MaxSamples:  cfg.MaxSamples,
		MaxFeatures: cfg.MaxFeatures,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
	})
	if err := ens.Fit(Xs, train.Y()); err != nil {
		return nil, fmt.Errorf("hmd: ensemble: %w", err)
	}
	return &Pipeline{
		cfg:    cfg,
		scaler: scaler,
		pca:    pca,
		ens:    ens,
		est:    core.Estimator{Classes: dataset.NumClasses},
	}, nil
}

func factoryFor(cfg Config) (func(int64) ensemble.Classifier, error) {
	switch cfg.Model {
	case RandomForest:
		return func(seed int64) ensemble.Classifier {
			// MaxFeatures -1 resolves to sqrt(d) at fit time.
			return tree.New(tree.Config{
				MaxFeatures: -1,
				MaxDepth:    cfg.TreeMaxDepth,
				MinLeaf:     cfg.TreeMinLeaf,
				Seed:        seed,
			})
		}, nil
	case LogisticRegression:
		return func(seed int64) ensemble.Classifier {
			return linear.NewLogistic(linear.LogisticConfig{Seed: seed, Epochs: 20, Batch: 16})
		}, nil
	case SVM:
		return func(seed int64) ensemble.Classifier {
			return linear.NewSVM(linear.SVMConfig{Seed: seed, Epochs: 100, MaxObjective: cfg.SVMMaxObjective})
		}, nil
	case NaiveBayes:
		return func(seed int64) ensemble.Classifier {
			return bayes.New(bayes.Config{})
		}, nil
	case KNN:
		return func(seed int64) ensemble.Classifier {
			return knn.New(knn.Config{K: 5})
		}, nil
	default:
		return nil, fmt.Errorf("hmd: unknown model %d", int(cfg.Model))
	}
}

// project applies scaling and PCA to one raw feature vector.
func (p *Pipeline) project(x []float64) ([]float64, error) {
	z, err := p.scaler.TransformVec(x)
	if err != nil {
		return nil, err
	}
	if p.pca != nil {
		z, err = p.pca.TransformVec(z)
		if err != nil {
			return nil, err
		}
	}
	return z, nil
}

// Predict runs the untrusted path: the plain majority-vote label.
func (p *Pipeline) Predict(x []float64) (int, error) {
	z, err := p.project(x)
	if err != nil {
		return 0, err
	}
	return p.ens.Predict(z), nil
}

// Assess runs the trusted path: label plus vote-entropy uncertainty.
func (p *Pipeline) Assess(x []float64) (Assessment, error) {
	z, err := p.project(x)
	if err != nil {
		return Assessment{}, err
	}
	votes := p.ens.Votes(z)
	h, err := p.est.VoteEntropy(votes)
	if err != nil {
		return Assessment{}, err
	}
	dist, err := p.est.VoteDistribution(votes)
	if err != nil {
		return Assessment{}, err
	}
	counts := make([]int, len(dist))
	best := 0
	for _, v := range votes {
		counts[v]++
	}
	for lab, c := range counts {
		if c > counts[best] {
			best = lab
		}
	}
	return Assessment{Prediction: best, Entropy: h, VoteDist: dist}, nil
}

// AssessDataset assesses every sample of d, returning parallel slices of
// predictions and entropies (the form the experiment harness consumes).
func (p *Pipeline) AssessDataset(d *dataset.Dataset) (preds []int, entropies []float64, err error) {
	if d == nil || d.Len() == 0 {
		return nil, nil, errors.New("hmd: empty dataset")
	}
	preds = make([]int, d.Len())
	entropies = make([]float64, d.Len())
	for i := 0; i < d.Len(); i++ {
		a, err := p.Assess(d.At(i).Features)
		if err != nil {
			return nil, nil, fmt.Errorf("hmd: sample %d: %w", i, err)
		}
		preds[i] = a.Prediction
		entropies[i] = a.Entropy
	}
	return preds, entropies, nil
}

// Posterior returns the averaged member posterior (Eq. 3) for x: mean of
// members' probability outputs, falling back to vote frequencies for
// members without probability support.
func (p *Pipeline) Posterior(x []float64) (core.Posterior, error) {
	z, err := p.project(x)
	if err != nil {
		return nil, err
	}
	return core.Posterior(p.ens.PredictProba(z)), nil
}

// DecomposeUncertainty separates the prediction's uncertainty on x into
// aleatoric and epistemic components (core.Decompose over the members'
// posteriors). With fully grown trees the members vote one-hot and all
// uncertainty registers as epistemic; soft members (LR, NB, kNN) yield a
// non-trivial split. This implements the source separation the paper's
// conclusion lists as future work.
func (p *Pipeline) DecomposeUncertainty(x []float64) (core.Decomposition, error) {
	z, err := p.project(x)
	if err != nil {
		return core.Decomposition{}, err
	}
	return core.Decompose(p.ens.MemberProbas(z))
}

// Decide runs the full trusted decision at a rejection threshold.
func (p *Pipeline) Decide(x []float64, threshold float64) (core.Decision, Assessment, error) {
	a, err := p.Assess(x)
	if err != nil {
		return core.DecideReject, Assessment{}, err
	}
	d, err := core.Rejector{Threshold: threshold}.Decide(a.Prediction, a.Entropy)
	if err != nil {
		return core.DecideReject, a, err
	}
	return d, a, nil
}

// Ensemble exposes the trained ensemble (for the Fig. 9a size sweep).
func (p *Pipeline) Ensemble() *ensemble.Bagging { return p.ens }

// TruncatedAssess assesses x with only the first m ensemble members —
// used by the Fig. 9a entropy-vs-ensemble-size sweep.
func (p *Pipeline) TruncatedAssess(x []float64, m int) (Assessment, error) {
	z, err := p.project(x)
	if err != nil {
		return Assessment{}, err
	}
	tr, err := p.ens.Truncated(m)
	if err != nil {
		return Assessment{}, err
	}
	votes := tr.Votes(z)
	h, err := p.est.VoteEntropy(votes)
	if err != nil {
		return Assessment{}, err
	}
	dist, err := p.est.VoteDistribution(votes)
	if err != nil {
		return Assessment{}, err
	}
	pred := 0
	counts := make([]int, len(dist))
	for _, v := range votes {
		counts[v]++
	}
	for lab, c := range counts {
		if c > counts[pred] {
			pred = lab
		}
	}
	return Assessment{Prediction: pred, Entropy: h, VoteDist: dist}, nil
}
