// Package hmd is the implementation core of the trusted HMD pipelines of
// the paper's Fig. 1: feature scaling → PCA → bagging ensemble →
// vote-entropy uncertainty. It is deliberately thin and mechanism-only —
// model families plug in through the Factory hook, and policy (rejection
// thresholds, model registry, serving concerns, serialization format) lives
// in the public pkg/detector API that wraps this package.
package hmd

import (
	"errors"
	"fmt"

	"trusthmd/internal/core"
	"trusthmd/internal/ensemble"
	"trusthmd/internal/reduce"
	"trusthmd/pkg/dataset"
	"trusthmd/pkg/linalg"
	"trusthmd/pkg/model"
)

// Factory constructs one untrained ensemble member from a seed. The open
// model registry in pkg/detector maps model names to factories; this
// package never enumerates classifier families. Alias of the exported
// pkg/model contract.
type Factory = model.Factory

// Config controls pipeline training.
type Config struct {
	// NewMember constructs an untrained base classifier from a seed.
	// Required.
	NewMember Factory
	// M is the ensemble size (the paper settles on ~20-25; default 25).
	M int
	// PCAComponents is the dimensionality after PCA; 0 skips PCA.
	PCAComponents int
	// Seed drives all randomness in the pipeline.
	Seed int64
	// Diversity selects bagging vs random-restart (default Bootstrap).
	Diversity ensemble.Diversity
	// MaxSamples is the bootstrap replicate fraction (0 = full size).
	MaxSamples float64
	// MaxFeatures is the per-member feature subset fraction (0 = all). The
	// experiments use random feature subspaces for the linear ensembles,
	// whose members are otherwise nearly identical under full bootstraps.
	MaxFeatures float64
	// Workers caps training parallelism; 0 means GOMAXPROCS.
	Workers int
}

// Pipeline is a trained trusted HMD. Its inference methods are safe for
// concurrent use: a fitted pipeline is immutable.
type Pipeline struct {
	cfg    Config
	scaler *dataset.Scaler
	pca    *reduce.PCA
	ens    *ensemble.Bagging
	est    core.Estimator
}

// Assessment is the trusted HMD's per-input output: the raw prediction,
// the vote-entropy uncertainty, and the vote distribution behind it.
type Assessment struct {
	Prediction int
	Entropy    float64
	VoteDist   []float64
}

// Train fits the full pipeline on the training split.
func Train(train *dataset.Dataset, cfg Config) (*Pipeline, error) {
	if train == nil || train.Len() == 0 {
		return nil, errors.New("hmd: empty training set")
	}
	if cfg.NewMember == nil {
		return nil, errors.New("hmd: config needs a NewMember factory")
	}
	if cfg.M <= 0 {
		cfg.M = 25
	}
	X := train.X()
	scaler, err := dataset.FitScaler(X)
	if err != nil {
		return nil, fmt.Errorf("hmd: scaler: %w", err)
	}
	Xs, err := scaler.Transform(X)
	if err != nil {
		return nil, fmt.Errorf("hmd: scale: %w", err)
	}

	var pca *reduce.PCA
	if cfg.PCAComponents > 0 {
		pca, err = reduce.FitPCA(Xs, cfg.PCAComponents)
		if err != nil {
			return nil, fmt.Errorf("hmd: pca: %w", err)
		}
		Xs, err = pca.Transform(Xs)
		if err != nil {
			return nil, fmt.Errorf("hmd: pca transform: %w", err)
		}
	}

	ens := ensemble.New(ensemble.Config{
		M:           cfg.M,
		New:         cfg.NewMember,
		Diversity:   cfg.Diversity,
		MaxSamples:  cfg.MaxSamples,
		MaxFeatures: cfg.MaxFeatures,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
	})
	if err := ens.Fit(Xs, train.Y()); err != nil {
		return nil, fmt.Errorf("hmd: ensemble: %w", err)
	}
	return &Pipeline{
		cfg:    cfg,
		scaler: scaler,
		pca:    pca,
		ens:    ens,
		est:    core.Estimator{Classes: dataset.NumClasses},
	}, nil
}

// Project applies scaling and PCA to one raw feature vector, yielding the
// representation the ensemble members consume.
func (p *Pipeline) Project(x []float64) ([]float64, error) {
	z, err := p.scaler.TransformVec(x)
	if err != nil {
		return nil, err
	}
	if p.pca != nil {
		z, err = p.pca.TransformVec(z)
		if err != nil {
			return nil, err
		}
	}
	return z, nil
}

// ProjectBatch applies scaling and PCA to a whole matrix of raw feature
// vectors (one sample per row) with matrix-level operations — once per
// batch instead of once per vector. Row i of the result is numerically
// identical to Project of row i of X.
func (p *Pipeline) ProjectBatch(X *linalg.Matrix) (*linalg.Matrix, error) {
	Z, err := p.scaler.Transform(X)
	if err != nil {
		return nil, err
	}
	if p.pca != nil {
		Z, err = p.pca.Transform(Z)
		if err != nil {
			return nil, err
		}
	}
	return Z, nil
}

// AssessProjected assesses an already-projected vector: one walk over the
// member votes yields prediction, entropy and vote distribution together.
func (p *Pipeline) AssessProjected(z []float64) (Assessment, error) {
	s, err := p.est.Summarize(p.ens.Votes(z))
	if err != nil {
		return Assessment{}, err
	}
	return Assessment{Prediction: s.Prediction, Entropy: s.Entropy, VoteDist: s.Dist}, nil
}

// AssessDecomposeProjected assesses an already-projected vector and also
// decomposes its uncertainty into aleatoric and epistemic components, with
// a single walk over the ensemble members producing both the votes and the
// member posteriors.
func (p *Pipeline) AssessDecomposeProjected(z []float64) (Assessment, core.Decomposition, error) {
	votes, probas := p.ens.MemberOutputs(z)
	s, err := p.est.Summarize(votes)
	if err != nil {
		return Assessment{}, core.Decomposition{}, err
	}
	dec, err := core.Decompose(probas)
	if err != nil {
		return Assessment{}, core.Decomposition{}, err
	}
	return Assessment{Prediction: s.Prediction, Entropy: s.Entropy, VoteDist: s.Dist}, dec, nil
}

// Assess runs the trusted path on a raw feature vector: label plus
// vote-entropy uncertainty.
func (p *Pipeline) Assess(x []float64) (Assessment, error) {
	z, err := p.Project(x)
	if err != nil {
		return Assessment{}, err
	}
	return p.AssessProjected(z)
}

// Predict runs the untrusted path: the plain majority-vote label.
func (p *Pipeline) Predict(x []float64) (int, error) {
	z, err := p.Project(x)
	if err != nil {
		return 0, err
	}
	return p.ens.Predict(z), nil
}

// Posterior returns the averaged member posterior (Eq. 3) for x: mean of
// members' probability outputs, falling back to vote frequencies for
// members without probability support.
func (p *Pipeline) Posterior(x []float64) (core.Posterior, error) {
	z, err := p.Project(x)
	if err != nil {
		return nil, err
	}
	return core.Posterior(p.ens.PredictProba(z)), nil
}

// DecomposeUncertainty separates the prediction's uncertainty on x into
// aleatoric and epistemic components (core.Decompose over the members'
// posteriors). With fully grown trees the members vote one-hot and all
// uncertainty registers as epistemic; soft members (LR, NB, kNN) yield a
// non-trivial split.
func (p *Pipeline) DecomposeUncertainty(x []float64) (core.Decomposition, error) {
	z, err := p.Project(x)
	if err != nil {
		return core.Decomposition{}, err
	}
	return core.Decompose(p.ens.MemberProbas(z))
}

// Ensemble exposes the trained ensemble (for the Fig. 9a size sweep).
func (p *Pipeline) Ensemble() *ensemble.Bagging { return p.ens }

// Members returns the number of trained ensemble members.
func (p *Pipeline) Members() int { return p.ens.Size() }

// InputDim returns the raw feature dimensionality the pipeline was fitted
// on (the scaler's input width, before any PCA reduction).
func (p *Pipeline) InputDim() int { return p.scaler.Dim() }

// Truncated returns a pipeline view restricted to the first m ensemble
// members, sharing the fitted scaler, PCA and members with the receiver —
// the Fig. 9a entropy-vs-ensemble-size sweep assesses through these views
// so one large fit serves every prefix.
func (p *Pipeline) Truncated(m int) (*Pipeline, error) {
	tr, err := p.ens.Truncated(m)
	if err != nil {
		return nil, err
	}
	return &Pipeline{cfg: p.cfg, scaler: p.scaler, pca: p.pca, ens: tr, est: p.est}, nil
}
