// Package hmd is the implementation core of the trusted HMD pipelines of
// the paper's Fig. 1: feature scaling → PCA → bagging ensemble →
// vote-entropy uncertainty. It is deliberately thin and mechanism-only —
// model families plug in through the Factory hook, and policy (rejection
// thresholds, model registry, serving concerns, serialization format) lives
// in the public pkg/detector API that wraps this package.
package hmd

import (
	"errors"
	"fmt"
	"sync"

	"trusthmd/internal/core"
	"trusthmd/internal/ensemble"
	"trusthmd/internal/reduce"
	"trusthmd/internal/stats"
	"trusthmd/pkg/dataset"
	"trusthmd/pkg/linalg"
	"trusthmd/pkg/model"
)

// ErrVoteRange re-exports the ensemble's out-of-histogram vote error so
// the detector can trigger its allocating fallback without importing
// internal/ensemble for one sentinel.
var ErrVoteRange = ensemble.ErrVoteRange

// Factory constructs one untrained ensemble member from a seed. The open
// model registry in pkg/detector maps model names to factories; this
// package never enumerates classifier families. Alias of the exported
// pkg/model contract.
type Factory = model.Factory

// Config controls pipeline training.
type Config struct {
	// NewMember constructs an untrained base classifier from a seed.
	// Required.
	NewMember Factory
	// M is the ensemble size (the paper settles on ~20-25; default 25).
	M int
	// PCAComponents is the dimensionality after PCA; 0 skips PCA.
	PCAComponents int
	// Seed drives all randomness in the pipeline.
	Seed int64
	// Diversity selects bagging vs random-restart (default Bootstrap).
	Diversity ensemble.Diversity
	// MaxSamples is the bootstrap replicate fraction (0 = full size).
	MaxSamples float64
	// MaxFeatures is the per-member feature subset fraction (0 = all). The
	// experiments use random feature subspaces for the linear ensembles,
	// whose members are otherwise nearly identical under full bootstraps.
	MaxFeatures float64
	// Workers caps training parallelism; 0 means GOMAXPROCS.
	Workers int
}

// Pipeline is a trained trusted HMD. Its inference methods are safe for
// concurrent use: a fitted pipeline is immutable (the scratch pool is
// internally synchronised).
type Pipeline struct {
	cfg    Config
	scaler *dataset.Scaler
	pca    *reduce.PCA
	ens    *ensemble.Bagging
	est    core.Estimator

	// scratch recycles single-sample assessment buffers across calls, so
	// the steady-state Assess path allocates only its result's VoteDist.
	// Never serialized; decoded and truncated pipelines start empty pools.
	scratch sync.Pool

	// entropy2 memoises the binary vote entropy: with M members and two
	// classes there are only M+1 possible histograms, so the hot
	// SummarizeCounts path replaces two log2 calls per sample with a table
	// lookup. Entries are produced by the very stats.CountEntropy call the
	// slow path makes, so they are bit-identical. Built lazily (never
	// serialized; rebuilt per process).
	entropyOnce sync.Once
	entropy2    []float64
}

// entropyTable returns the memoised binary-histogram entropies, indexed by
// the class-1 count, or nil when the pipeline is not a two-class ensemble.
func (p *Pipeline) entropyTable() []float64 {
	p.entropyOnce.Do(func() {
		if p.Classes() != 2 {
			return
		}
		m := p.ens.Size()
		tab := make([]float64, m+1)
		pair := make([]int, 2)
		for c := 0; c <= m; c++ {
			pair[0], pair[1] = m-c, c
			h, err := stats.CountEntropy(pair)
			if err != nil {
				return
			}
			tab[c] = h
		}
		p.entropy2 = tab
	})
	return p.entropy2
}

// assessScratch is one pooled set of single-sample buffers.
type assessScratch struct {
	scaled  []float64
	reduced []float64
	input   []float64
	counts  []int
}

func (p *Pipeline) getScratch() *assessScratch {
	if s, ok := p.scratch.Get().(*assessScratch); ok {
		return s
	}
	return &assessScratch{
		scaled:  make([]float64, p.scaler.Dim()),
		reduced: make([]float64, p.ProjectedDim()),
		input:   make([]float64, p.MemberScratchDim()),
		counts:  make([]int, p.Classes()),
	}
}

// AssessPooled assesses one raw vector through pooled projection and vote
// buffers: prediction, entropy and vote distribution are bit-identical to
// Assess, and the only steady-state allocation is the returned VoteDist.
func (p *Pipeline) AssessPooled(x []float64) (Assessment, error) {
	s := p.getScratch()
	defer p.scratch.Put(s)
	z, err := p.ProjectInto(s.scaled, s.reduced, x)
	if err != nil {
		return Assessment{}, err
	}
	return p.AssessProjectedInto(z, s.input, make([]float64, p.Classes()), s.counts)
}

// AssessProjectedPooled is AssessPooled for an already-projected vector —
// the streaming memo path, which skips projection entirely.
func (p *Pipeline) AssessProjectedPooled(z []float64) (Assessment, error) {
	s := p.getScratch()
	defer p.scratch.Put(s)
	return p.AssessProjectedInto(z, s.input, make([]float64, p.Classes()), s.counts)
}

// Assessment is the trusted HMD's per-input output: the raw prediction,
// the vote-entropy uncertainty, and the vote distribution behind it.
type Assessment struct {
	Prediction int
	Entropy    float64
	VoteDist   []float64
}

// Train fits the full pipeline on the training split.
func Train(train *dataset.Dataset, cfg Config) (*Pipeline, error) {
	if train == nil || train.Len() == 0 {
		return nil, errors.New("hmd: empty training set")
	}
	if cfg.NewMember == nil {
		return nil, errors.New("hmd: config needs a NewMember factory")
	}
	if cfg.M <= 0 {
		cfg.M = 25
	}
	X := train.X()
	scaler, err := dataset.FitScaler(X)
	if err != nil {
		return nil, fmt.Errorf("hmd: scaler: %w", err)
	}
	Xs, err := scaler.Transform(X)
	if err != nil {
		return nil, fmt.Errorf("hmd: scale: %w", err)
	}

	var pca *reduce.PCA
	if cfg.PCAComponents > 0 {
		pca, err = reduce.FitPCA(Xs, cfg.PCAComponents)
		if err != nil {
			return nil, fmt.Errorf("hmd: pca: %w", err)
		}
		Xs, err = pca.Transform(Xs)
		if err != nil {
			return nil, fmt.Errorf("hmd: pca transform: %w", err)
		}
	}

	ens := ensemble.New(ensemble.Config{
		M:           cfg.M,
		New:         cfg.NewMember,
		Diversity:   cfg.Diversity,
		MaxSamples:  cfg.MaxSamples,
		MaxFeatures: cfg.MaxFeatures,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
	})
	if err := ens.Fit(Xs, train.Y()); err != nil {
		return nil, fmt.Errorf("hmd: ensemble: %w", err)
	}
	return &Pipeline{
		cfg:    cfg,
		scaler: scaler,
		pca:    pca,
		ens:    ens,
		est:    core.Estimator{Classes: dataset.NumClasses},
	}, nil
}

// Project applies scaling and PCA to one raw feature vector, yielding the
// representation the ensemble members consume.
func (p *Pipeline) Project(x []float64) ([]float64, error) {
	z, err := p.scaler.TransformVec(x)
	if err != nil {
		return nil, err
	}
	if p.pca != nil {
		z, err = p.pca.TransformVec(z)
		if err != nil {
			return nil, err
		}
	}
	return z, nil
}

// ProjectBatch applies scaling and PCA to a whole matrix of raw feature
// vectors (one sample per row) with matrix-level operations — once per
// batch instead of once per vector. Row i of the result is numerically
// identical to Project of row i of X.
func (p *Pipeline) ProjectBatch(X *linalg.Matrix) (*linalg.Matrix, error) {
	Z, err := p.scaler.Transform(X)
	if err != nil {
		return nil, err
	}
	if p.pca != nil {
		Z, err = p.pca.Transform(Z)
		if err != nil {
			return nil, err
		}
	}
	return Z, nil
}

// Classes returns the width of the vote histogram the estimator builds —
// the counts/dist buffer size the scratch assessment paths require.
func (p *Pipeline) Classes() int {
	k := p.est.Classes
	if k < 2 {
		k = 2
	}
	return k
}

// ProjectedDim returns the dimensionality ensemble members consume: the
// PCA width when a PCA stage is fitted, the scaler width otherwise.
func (p *Pipeline) ProjectedDim() int {
	if p.pca != nil {
		return p.pca.K()
	}
	return p.scaler.Dim()
}

// MemberScratchDim returns the widest per-member input the ensemble can
// request — the input buffer size the vote-accumulation paths need.
func (p *Pipeline) MemberScratchDim() int {
	return p.ens.MaxMemberDim(p.ProjectedDim())
}

// ProjectInto is the destination-passing Project: scaled (len InputDim)
// and reduced (len ProjectedDim) are caller-owned buffers, and the
// returned slice aliases whichever of the two holds the projection.
// Values are bit-identical to Project.
func (p *Pipeline) ProjectInto(scaled, reduced, x []float64) ([]float64, error) {
	if err := p.scaler.TransformVecInto(scaled, x); err != nil {
		return nil, err
	}
	if p.pca == nil {
		return scaled, nil
	}
	if err := p.pca.TransformVecInto(reduced, scaled); err != nil {
		return nil, err
	}
	return reduced, nil
}

// ProjectBatchScratch projects a whole batch through scaling and PCA with
// zero steady-state allocations: work holds the raw samples (one per row)
// and is overwritten with the scaled representation; reduced is resized to
// receive the PCA projection when that stage exists. The returned matrix
// aliases one of the two scratches. Row i is bit-identical to Project of
// row i.
func (p *Pipeline) ProjectBatchScratch(work, reduced *linalg.Matrix) (*linalg.Matrix, error) {
	if err := p.scaler.TransformInto(work, work); err != nil {
		return nil, err
	}
	if p.pca == nil {
		return work, nil
	}
	reduced.ResizeUnset(work.Rows(), p.pca.K()) // MulInto writes every cell
	if err := p.pca.TransformInto(reduced, work); err != nil {
		return nil, err
	}
	return reduced, nil
}

// ProjectRowsScratch is ProjectBatchScratch fed directly from raw sample
// rows: scaling reads each row once and writes the standardised values
// straight into work, skipping the separate batch-load copy. Row i of the
// result is bit-identical to Project of rows[i]. Rows must all have
// InputDim features.
func (p *Pipeline) ProjectRowsScratch(rows [][]float64, work, reduced *linalg.Matrix) (*linalg.Matrix, error) {
	work.ResizeUnset(len(rows), p.scaler.Dim()) // TransformRowsInto writes every cell
	if err := p.scaler.TransformRowsInto(work, rows); err != nil {
		return nil, err
	}
	if p.pca == nil {
		return work, nil
	}
	reduced.ResizeUnset(work.Rows(), p.pca.K()) // MulInto writes every cell
	if err := p.pca.TransformInto(reduced, work); err != nil {
		return nil, err
	}
	return reduced, nil
}

// AccumulateVotes adds the votes of members [from, to) over every row of Z
// into the row-major rows x Classes() histogram slab counts. votes and
// input are caller-owned scratch (see ensemble.AccumulateVotes). ZT is an
// optional transpose of Z shared by members that want feature-major loads
// (see WantsCols); nil is always valid. A ErrVoteRange result means a
// member voted outside the histogram; callers fall back to the allocating
// assessment path, which grows defensively.
func (p *Pipeline) AccumulateVotes(Z, ZT *linalg.Matrix, counts []int, from, to int, votes []int, input []float64) error {
	return p.ens.AccumulateVotes(Z, ZT, counts, p.Classes(), from, to, votes, input)
}

// WantsCols reports whether AccumulateVotes would exploit a transposed
// copy of the projected batch. Callers that answer true compute the
// transpose once per batch and pass it to every AccumulateVotes range.
func (p *Pipeline) WantsCols() bool { return p.ens.WantsCols() }

// SummarizeCounts turns one row's accumulated vote histogram into an
// Assessment, writing the vote distribution into dist (len Classes()).
// Binary full-turnout histograms take the memoised-entropy fast path;
// everything else goes through the estimator. Both are bit-identical.
func (p *Pipeline) SummarizeCounts(counts []int, dist []float64) (Assessment, error) {
	m := p.ens.Size()
	if len(counts) == 2 && len(dist) == 2 && counts[0] >= 0 && counts[1] >= 0 && counts[0]+counts[1] == m {
		if tab := p.entropyTable(); tab != nil {
			c0, c1 := counts[0], counts[1]
			inv := 1 / float64(m)
			dist[0], dist[1] = float64(c0)*inv, float64(c1)*inv
			pred := 0
			if c1 > c0 {
				pred = 1
			}
			return Assessment{Prediction: pred, Entropy: tab[c1], VoteDist: dist}, nil
		}
	}
	s, err := p.est.SummarizeCounts(counts, m, dist)
	if err != nil {
		return Assessment{}, err
	}
	return Assessment{Prediction: s.Prediction, Entropy: s.Entropy, VoteDist: s.Dist}, nil
}

// AssessProjectedInto assesses an already-projected vector using only
// caller-owned buffers: counts (len >= Classes()) is zeroed and refilled,
// input is member-subset scratch, and the vote distribution lands in dist
// (len Classes()). Results are bit-identical to AssessProjected; the rare
// out-of-range vote falls back to it.
func (p *Pipeline) AssessProjectedInto(z, input, dist []float64, counts []int) (Assessment, error) {
	k := p.Classes()
	counts = counts[:k]
	for i := range counts {
		counts[i] = 0
	}
	if err := p.ens.AccumulateVotesVec(counts, k, z, input); err != nil {
		if errors.Is(err, ErrVoteRange) {
			return p.AssessProjected(z)
		}
		return Assessment{}, err
	}
	return p.SummarizeCounts(counts, dist)
}

// AssessProjected assesses an already-projected vector: one walk over the
// member votes yields prediction, entropy and vote distribution together.
func (p *Pipeline) AssessProjected(z []float64) (Assessment, error) {
	s, err := p.est.Summarize(p.ens.Votes(z))
	if err != nil {
		return Assessment{}, err
	}
	return Assessment{Prediction: s.Prediction, Entropy: s.Entropy, VoteDist: s.Dist}, nil
}

// AssessDecomposeProjected assesses an already-projected vector and also
// decomposes its uncertainty into aleatoric and epistemic components, with
// a single walk over the ensemble members producing both the votes and the
// member posteriors.
func (p *Pipeline) AssessDecomposeProjected(z []float64) (Assessment, core.Decomposition, error) {
	votes, probas := p.ens.MemberOutputs(z)
	s, err := p.est.Summarize(votes)
	if err != nil {
		return Assessment{}, core.Decomposition{}, err
	}
	dec, err := core.Decompose(probas)
	if err != nil {
		return Assessment{}, core.Decomposition{}, err
	}
	return Assessment{Prediction: s.Prediction, Entropy: s.Entropy, VoteDist: s.Dist}, dec, nil
}

// Assess runs the trusted path on a raw feature vector: label plus
// vote-entropy uncertainty.
func (p *Pipeline) Assess(x []float64) (Assessment, error) {
	z, err := p.Project(x)
	if err != nil {
		return Assessment{}, err
	}
	return p.AssessProjected(z)
}

// Predict runs the untrusted path: the plain majority-vote label.
func (p *Pipeline) Predict(x []float64) (int, error) {
	z, err := p.Project(x)
	if err != nil {
		return 0, err
	}
	return p.ens.Predict(z), nil
}

// Posterior returns the averaged member posterior (Eq. 3) for x: mean of
// members' probability outputs, falling back to vote frequencies for
// members without probability support.
func (p *Pipeline) Posterior(x []float64) (core.Posterior, error) {
	z, err := p.Project(x)
	if err != nil {
		return nil, err
	}
	return core.Posterior(p.ens.PredictProba(z)), nil
}

// DecomposeUncertainty separates the prediction's uncertainty on x into
// aleatoric and epistemic components (core.Decompose over the members'
// posteriors). With fully grown trees the members vote one-hot and all
// uncertainty registers as epistemic; soft members (LR, NB, kNN) yield a
// non-trivial split.
func (p *Pipeline) DecomposeUncertainty(x []float64) (core.Decomposition, error) {
	z, err := p.Project(x)
	if err != nil {
		return core.Decomposition{}, err
	}
	return core.Decompose(p.ens.MemberProbas(z))
}

// Ensemble exposes the trained ensemble (for the Fig. 9a size sweep).
func (p *Pipeline) Ensemble() *ensemble.Bagging { return p.ens }

// Members returns the number of trained ensemble members.
func (p *Pipeline) Members() int { return p.ens.Size() }

// InputDim returns the raw feature dimensionality the pipeline was fitted
// on (the scaler's input width, before any PCA reduction).
func (p *Pipeline) InputDim() int { return p.scaler.Dim() }

// Truncated returns a pipeline view restricted to the first m ensemble
// members, sharing the fitted scaler, PCA and members with the receiver —
// the Fig. 9a entropy-vs-ensemble-size sweep assesses through these views
// so one large fit serves every prefix.
func (p *Pipeline) Truncated(m int) (*Pipeline, error) {
	tr, err := p.ens.Truncated(m)
	if err != nil {
		return nil, err
	}
	return &Pipeline{cfg: p.cfg, scaler: p.scaler, pca: p.pca, ens: tr, est: p.est}, nil
}
