package ensemble

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
)

// baggingGob is the exported wire form of a trained Bagging ensemble. The
// member factory (Config.New) is deliberately not serialized — a decoded
// ensemble can predict but must be rebuilt through a factory to refit.
// Concrete member types must be gob-registered; the internal/ml packages
// self-register in their init functions, and detector.Register accepts
// prototypes for external families.
type baggingGob struct {
	M           int
	Diversity   Diversity
	MaxSamples  float64
	MaxFeatures float64
	Seed        int64
	Workers     int
	Members     []Classifier
	Features    [][]int
	Classes     int
}

// GobEncode implements gob.GobEncoder for trained-pipeline serialization.
func (b *Bagging) GobEncode() ([]byte, error) {
	if b.members == nil {
		return nil, ErrNotFitted
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(baggingGob{
		M:           b.cfg.M,
		Diversity:   b.cfg.Diversity,
		MaxSamples:  b.cfg.MaxSamples,
		MaxFeatures: b.cfg.MaxFeatures,
		Seed:        b.cfg.Seed,
		Workers:     b.cfg.Workers,
		Members:     b.members,
		Features:    b.features,
		Classes:     b.classes,
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (b *Bagging) GobDecode(data []byte) error {
	var g baggingGob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return err
	}
	if len(g.Members) == 0 {
		return errors.New("ensemble: corrupt gob: no members")
	}
	if len(g.Features) != len(g.Members) {
		// GobEncode always writes one (possibly nil) feature set per member;
		// a mismatch means corruption, and guessing "all features" here would
		// feed full-width vectors to members trained on subspaces.
		return fmt.Errorf("ensemble: corrupt gob: %d feature sets for %d members",
			len(g.Features), len(g.Members))
	}
	// Gob flattens nil inner slices to empty ones; memberInput relies on
	// nil meaning "all features", so normalise.
	for i, f := range g.Features {
		if len(f) == 0 {
			g.Features[i] = nil
		}
	}
	b.cfg = Config{
		M:           g.M,
		Diversity:   g.Diversity,
		MaxSamples:  g.MaxSamples,
		MaxFeatures: g.MaxFeatures,
		Seed:        g.Seed,
		Workers:     g.Workers,
	}
	b.members = g.Members
	b.features = g.Features
	b.classes = g.Classes
	b.fitErrors = nil
	return nil
}
