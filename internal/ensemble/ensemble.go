// Package ensemble implements the bagging framework of the paper's Fig. 2:
// M base classifiers are trained on bootstrap replicates of the training
// set, and at inference the ensemble exposes the individual hard decisions
// ("votes") of its members — the analogue of iterating scikit-learn's
// estimators_ attribute — from which the uncertainty estimator builds the
// vote frequency distribution.
//
// The framework is generic over a Classifier factory, so Random Forest
// trees, logistic regressions and SVMs all plug in unchanged. It also
// supports random-restart diversity (no bootstrap resampling, different
// seeds only) for the deep-ensembles-style ablation.
package ensemble

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"trusthmd/pkg/linalg"
	"trusthmd/pkg/model"
)

// Classifier is the minimal contract a base model must satisfy. It is an
// alias of the exported pkg/model contract, so in-module implementations
// and externally registered families are the same type.
type Classifier = model.Classifier

// ProbClassifier is optionally implemented by base models that can emit a
// class-probability distribution; the ensemble then supports averaged
// posteriors (Eq. 3) in addition to hard votes. Alias of pkg/model's
// contract.
type ProbClassifier = model.ProbClassifier

// Diversity selects how ensemble members are diversified.
type Diversity int

const (
	// Bootstrap trains each member on a bootstrap replicate (bagging,
	// Breiman 1996) — the paper's method.
	Bootstrap Diversity = iota
	// RandomInit trains each member on the full training set; diversity
	// comes only from the member's own seed (deep-ensembles style [8]).
	RandomInit
)

// String implements fmt.Stringer.
func (d Diversity) String() string {
	switch d {
	case Bootstrap:
		return "bootstrap"
	case RandomInit:
		return "random-init"
	default:
		return fmt.Sprintf("diversity(%d)", int(d))
	}
}

// Config controls ensemble training.
type Config struct {
	// M is the number of base classifiers (the paper varies 1..100 and
	// settles on ~20-25).
	M int
	// New constructs an untrained base classifier from a seed. Required.
	New func(seed int64) Classifier
	// Diversity selects bagging vs random-restart (default Bootstrap).
	Diversity Diversity
	// MaxSamples is the bootstrap replicate size as a fraction of the
	// training set (sklearn BaggingClassifier's max_samples); 0 means 1.0.
	// Smaller replicates increase member diversity at some cost in member
	// strength.
	MaxSamples float64
	// MaxFeatures is the per-member feature subset size as a fraction of
	// the input dimensionality (sklearn BaggingClassifier's max_features);
	// 0 means 1.0. Members train and predict on their own random feature
	// subset, the classic recipe for diversifying otherwise-stable base
	// learners (random subspaces, Ho 1998).
	MaxFeatures float64
	// Seed drives bootstrap resampling and member seeds.
	Seed int64
	// Workers caps fit-time parallelism; 0 means GOMAXPROCS.
	Workers int
	// KeepFitErrors, when true, tolerates individual member fit errors
	// (e.g. SVM non-convergence) as long as at least one member trains;
	// failing members are dropped and recorded in FitErrors. When false
	// (default) any member error aborts Fit.
	KeepFitErrors bool
}

// Bagging is the trained ensemble.
type Bagging struct {
	cfg       Config
	members   []Classifier
	features  [][]int // per-member feature subset; nil = all features
	fitErrors []error
	classes   int
}

// ErrNotFitted reports use before Fit.
var ErrNotFitted = errors.New("ensemble: not fitted")

// New returns an untrained ensemble.
func New(cfg Config) *Bagging {
	return &Bagging{cfg: cfg}
}

// Fit trains the M members. With Bootstrap diversity each member sees an
// n-sample resample-with-replacement of (X, y); with RandomInit each member
// sees the full data and only its seed differs. Training runs in parallel
// but is deterministic for a fixed Config.Seed.
func (b *Bagging) Fit(X *linalg.Matrix, y []int) error {
	if b.cfg.M < 1 {
		return fmt.Errorf("ensemble: config needs M>=1, got %d", b.cfg.M)
	}
	if b.cfg.New == nil {
		return errors.New("ensemble: config needs a New factory")
	}
	if X.Rows() == 0 {
		return errors.New("ensemble: empty training set")
	}
	if X.Rows() != len(y) {
		return fmt.Errorf("ensemble: %d rows but %d labels", X.Rows(), len(y))
	}
	if b.cfg.MaxSamples < 0 || b.cfg.MaxSamples > 1 {
		return fmt.Errorf("ensemble: max samples %v outside (0,1]", b.cfg.MaxSamples)
	}
	if b.cfg.MaxFeatures < 0 || b.cfg.MaxFeatures > 1 {
		return fmt.Errorf("ensemble: max features %v outside (0,1]", b.cfg.MaxFeatures)
	}
	maxLabel := 0
	for _, lab := range y {
		if lab > maxLabel {
			maxLabel = lab
		}
	}
	b.classes = maxLabel + 1
	if b.classes < 2 {
		b.classes = 2
	}

	seedRng := rand.New(rand.NewSource(b.cfg.Seed))
	bootSeeds := make([]int64, b.cfg.M)
	memberSeeds := make([]int64, b.cfg.M)
	featureSets := make([][]int, b.cfg.M)
	nSub := X.Cols()
	if b.cfg.MaxFeatures > 0 {
		nSub = int(b.cfg.MaxFeatures * float64(X.Cols()))
		if nSub < 1 {
			nSub = 1
		}
	}
	for i := 0; i < b.cfg.M; i++ {
		bootSeeds[i] = seedRng.Int63()
		memberSeeds[i] = seedRng.Int63()
		if nSub < X.Cols() {
			idx := seedRng.Perm(X.Cols())[:nSub]
			sortInts(idx)
			featureSets[i] = idx
		}
	}

	members := make([]Classifier, b.cfg.M)
	errs := make([]error, b.cfg.M)
	workers := b.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > b.cfg.M {
		workers = b.cfg.M
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for m := 0; m < b.cfg.M; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			tx, ty := X, y
			if b.cfg.Diversity == Bootstrap {
				size := X.Rows()
				if b.cfg.MaxSamples > 0 {
					size = int(b.cfg.MaxSamples * float64(X.Rows()))
					if size < 1 {
						size = 1
					}
				}
				tx, ty = ResampleN(X, y, size, rand.New(rand.NewSource(bootSeeds[m])))
			}
			if featureSets[m] != nil {
				tx = selectColumns(tx, featureSets[m])
			}
			c := b.cfg.New(memberSeeds[m])
			if err := c.Fit(tx, ty); err != nil {
				errs[m] = fmt.Errorf("ensemble: member %d: %w", m, err)
				return
			}
			members[m] = c
		}(m)
	}
	wg.Wait()

	b.members = b.members[:0]
	b.features = b.features[:0]
	b.fitErrors = b.fitErrors[:0]
	for m := 0; m < b.cfg.M; m++ {
		if errs[m] != nil {
			if !b.cfg.KeepFitErrors {
				b.members = nil
				b.features = nil
				return errs[m]
			}
			b.fitErrors = append(b.fitErrors, errs[m])
			continue
		}
		b.members = append(b.members, members[m])
		b.features = append(b.features, featureSets[m])
	}
	if len(b.members) == 0 {
		err := errs[0]
		b.members = nil
		b.features = nil
		return fmt.Errorf("ensemble: all members failed to fit: %w", err)
	}
	return nil
}

// sortInts is a tiny insertion sort; feature subsets are short.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// selectColumns builds a matrix restricted to the given columns.
func selectColumns(X *linalg.Matrix, cols []int) *linalg.Matrix {
	out := linalg.New(X.Rows(), len(cols))
	for i := 0; i < X.Rows(); i++ {
		src := X.Row(i)
		dst := out.Row(i)
		for j, c := range cols {
			dst[j] = src[c]
		}
	}
	return out
}

// memberInput projects x onto member m's feature subset (or returns x when
// the member uses all features).
func (b *Bagging) memberInput(m int, x []float64) []float64 {
	cols := b.features[m]
	if cols == nil {
		return x
	}
	out := make([]float64, len(cols))
	for j, c := range cols {
		out[j] = x[c]
	}
	return out
}

// Resample draws an n-sample bootstrap replicate of (X, y).
func Resample(X *linalg.Matrix, y []int, rng *rand.Rand) (*linalg.Matrix, []int) {
	return ResampleN(X, y, X.Rows(), rng)
}

// ResampleN draws a size-sample bootstrap replicate of (X, y), sampling
// with replacement.
func ResampleN(X *linalg.Matrix, y []int, size int, rng *rand.Rand) (*linalg.Matrix, []int) {
	n := X.Rows()
	bx := linalg.New(size, X.Cols())
	by := make([]int, size)
	for i := 0; i < size; i++ {
		j := rng.Intn(n)
		copy(bx.Row(i), X.Row(j))
		by[i] = y[j]
	}
	return bx, by
}

// Estimators returns the trained members — the sklearn estimators_
// analogue. The returned slice is shared; do not mutate.
func (b *Bagging) Estimators() []Classifier {
	if b.members == nil {
		panic(ErrNotFitted)
	}
	return b.members
}

// Size returns the number of successfully trained members.
func (b *Bagging) Size() int { return len(b.members) }

// FitErrors returns the per-member errors tolerated under KeepFitErrors.
func (b *Bagging) FitErrors() []error { return b.fitErrors }

// NumClasses returns the number of classes inferred at fit time.
func (b *Bagging) NumClasses() int { return b.classes }

// Votes returns the hard decision of every member on x.
func (b *Bagging) Votes(x []float64) []int {
	if b.members == nil {
		panic(ErrNotFitted)
	}
	votes := make([]int, len(b.members))
	for i, m := range b.members {
		votes[i] = m.Predict(b.memberInput(i, x))
	}
	return votes
}

// ErrVoteRange reports a member vote outside the [0, classes) histogram a
// batched accumulation was given. Callers fall back to the allocating vote
// path, which grows its histogram defensively.
var ErrVoteRange = errors.New("ensemble: member vote outside class range")

// AccumulateVotes adds the votes of members [from, to) on every row of Z
// into counts, a row-major rows x k histogram slab (a vote v on row i
// increments counts[i*k+v]). votes (len >= rows) and input (len >=
// Z.Cols()) are caller-owned scratch, so the steady state allocates
// nothing. Members that implement model.BatchClassifier and see the full
// feature space vote through PredictBatch — one pass per member keeps that
// member's model state cache-hot across the whole batch.
//
// ZT, when non-nil, is the transpose of Z, computed once by the caller and
// shared read-only by every member implementing model.ColsBatchClassifier
// (the vectorized tree kernel wants feature-major loads). Pass nil when no
// member wants it (see WantsCols); predictions are identical either way.
//
// The member range makes the accumulation partitionable: disjoint ranges
// touch disjoint member state, so workers can fill private slabs in
// parallel and integer-add them together without changing any count.
func (b *Bagging) AccumulateVotes(Z, ZT *linalg.Matrix, counts []int, k, from, to int, votes []int, input []float64) error {
	if b.members == nil {
		panic(ErrNotFitted)
	}
	n := Z.Rows()
	if from < 0 || to > len(b.members) || from > to {
		return fmt.Errorf("ensemble: member range [%d,%d) of %d", from, to, len(b.members))
	}
	if len(counts) < n*k {
		return fmt.Errorf("ensemble: counts len %d for %d rows x %d classes", len(counts), n, k)
	}
	for m := from; m < to; m++ {
		member := b.members[m]
		cols := b.features[m]
		if cols == nil {
			if bc, ok := member.(model.BatchClassifier); ok {
				if cbc, ok := member.(model.ColsBatchClassifier); ok && ZT != nil {
					cbc.PredictBatchCols(Z, ZT, votes[:n])
				} else {
					bc.PredictBatch(Z, votes[:n])
				}
				ci := 0
				for _, v := range votes[:n] {
					if v < 0 || v >= k {
						return fmt.Errorf("%w: vote %d of %d classes", ErrVoteRange, v, k)
					}
					counts[ci+v]++
					ci += k
				}
				continue
			}
			for i := 0; i < n; i++ {
				v := member.Predict(Z.Row(i))
				if v < 0 || v >= k {
					return fmt.Errorf("%w: vote %d of %d classes", ErrVoteRange, v, k)
				}
				counts[i*k+v]++
			}
			continue
		}
		sub := input[:len(cols)]
		for i := 0; i < n; i++ {
			row := Z.Row(i)
			for j, c := range cols {
				sub[j] = row[c]
			}
			v := member.Predict(sub)
			if v < 0 || v >= k {
				return fmt.Errorf("%w: vote %d of %d classes", ErrVoteRange, v, k)
			}
			counts[i*k+v]++
		}
	}
	return nil
}

// WantsCols reports whether any full-feature member would use a
// feature-major (transposed) copy of the batch in AccumulateVotes. When
// false, callers should pass ZT == nil and skip the transpose entirely.
func (b *Bagging) WantsCols() bool {
	for m, member := range b.members {
		if b.features[m] != nil {
			continue // subset members vote per-row; no batch path
		}
		if cbc, ok := member.(model.ColsBatchClassifier); ok && cbc.WantsCols() {
			return true
		}
	}
	return false
}

// AccumulateVotesVec adds every member's vote on the single sample x into
// counts (len k), using input as the feature-subset scratch. It is the
// one-row form of AccumulateVotes for the streaming and single-sample
// paths.
func (b *Bagging) AccumulateVotesVec(counts []int, k int, x []float64, input []float64) error {
	if b.members == nil {
		panic(ErrNotFitted)
	}
	if len(counts) < k {
		return fmt.Errorf("ensemble: counts len %d for %d classes", len(counts), k)
	}
	for m, member := range b.members {
		xi := x
		if cols := b.features[m]; cols != nil {
			sub := input[:len(cols)]
			for j, c := range cols {
				sub[j] = x[c]
			}
			xi = sub
		}
		v := member.Predict(xi)
		if v < 0 || v >= k {
			return fmt.Errorf("%w: vote %d of %d classes", ErrVoteRange, v, k)
		}
		counts[v]++
	}
	return nil
}

// MaxMemberDim returns the widest member input (the full feature space, or
// the largest feature subset) — the scratch size AccumulateVotes needs.
func (b *Bagging) MaxMemberDim(full int) int {
	dim := 0
	for _, cols := range b.features {
		if cols == nil {
			return full
		}
		if len(cols) > dim {
			dim = len(cols)
		}
	}
	if dim == 0 || dim > full {
		dim = full
	}
	return dim
}

// VoteCounts returns the per-class tally of member votes on x.
func (b *Bagging) VoteCounts(x []float64) []int {
	counts := make([]int, b.classes)
	for _, v := range b.Votes(x) {
		if v >= len(counts) { // defensive: member predicted unseen class
			grown := make([]int, v+1)
			copy(grown, counts)
			counts = grown
		}
		counts[v]++
	}
	return counts
}

// Predict returns the plurality vote; ties resolve to the lower class.
func (b *Bagging) Predict(x []float64) int {
	counts := b.VoteCounts(x)
	best := 0
	for lab, c := range counts {
		if c > counts[best] {
			best = lab
		}
	}
	return best
}

// PredictProba averages members' probability outputs (Eq. 3). Members that
// do not implement ProbClassifier contribute a one-hot distribution of
// their hard vote, so the result degrades gracefully to vote frequencies.
func (b *Bagging) PredictProba(x []float64) []float64 {
	if b.members == nil {
		panic(ErrNotFitted)
	}
	out := make([]float64, b.classes)
	for i, m := range b.members {
		xi := b.memberInput(i, x)
		if pc, ok := m.(ProbClassifier); ok {
			p := pc.PredictProba(xi)
			for j := 0; j < len(out) && j < len(p); j++ {
				out[j] += p[j]
			}
			continue
		}
		if v := m.Predict(xi); v < len(out) {
			out[v]++
		}
	}
	inv := 1 / float64(len(b.members))
	for j := range out {
		out[j] *= inv
	}
	return out
}

// MemberProbas returns one posterior distribution per member: the member's
// PredictProba when available, else a one-hot encoding of its hard vote.
// This is the input to the uncertainty decomposition (core.Decompose).
func (b *Bagging) MemberProbas(x []float64) [][]float64 {
	if b.members == nil {
		panic(ErrNotFitted)
	}
	out := make([][]float64, len(b.members))
	for i, m := range b.members {
		xi := b.memberInput(i, x)
		if pc, ok := m.(ProbClassifier); ok {
			p := pc.PredictProba(xi)
			row := make([]float64, b.classes)
			copy(row, p)
			out[i] = row
			continue
		}
		row := make([]float64, b.classes)
		if v := m.Predict(xi); v < len(row) {
			row[v] = 1
		}
		out[i] = row
	}
	return out
}

// MemberOutputs returns every member's hard vote and posterior in a single
// walk over the members — the one-pass input for an assessment that needs
// both the vote-entropy estimate and the aleatoric/epistemic decomposition.
// Posteriors follow the MemberProbas convention: PredictProba when the
// member supports it, else a one-hot encoding of the hard vote.
func (b *Bagging) MemberOutputs(x []float64) (votes []int, probas [][]float64) {
	if b.members == nil {
		panic(ErrNotFitted)
	}
	votes = make([]int, len(b.members))
	probas = make([][]float64, len(b.members))
	for i, m := range b.members {
		xi := b.memberInput(i, x)
		votes[i] = m.Predict(xi)
		row := make([]float64, b.classes)
		if pc, ok := m.(ProbClassifier); ok {
			copy(row, pc.PredictProba(xi))
		} else if votes[i] < len(row) {
			row[votes[i]] = 1
		}
		probas[i] = row
	}
	return votes, probas
}

// Truncated returns a view of the ensemble restricted to its first m
// members (used by the Fig. 9a ensemble-size sweep so one 100-member fit
// serves every prefix). It shares trained members with the receiver.
func (b *Bagging) Truncated(m int) (*Bagging, error) {
	if b.members == nil {
		return nil, ErrNotFitted
	}
	if m < 1 || m > len(b.members) {
		return nil, fmt.Errorf("ensemble: truncate to %d of %d members", m, len(b.members))
	}
	return &Bagging{cfg: b.cfg, members: b.members[:m], features: b.features[:m], classes: b.classes}, nil
}
