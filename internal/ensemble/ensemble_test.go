package ensemble

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trusthmd/internal/ml/linear"
	"trusthmd/internal/ml/tree"
	"trusthmd/pkg/linalg"
)

func blobs(rng *rand.Rand, n int, gap float64) (*linalg.Matrix, []int) {
	rows := make([][]float64, n)
	y := make([]int, n)
	for i := range rows {
		cls := i % 2
		cx := -gap
		if cls == 1 {
			cx = gap
		}
		rows[i] = []float64{cx + rng.NormFloat64()*0.7, rng.NormFloat64() * 0.7}
		y[i] = cls
	}
	return linalg.MustFromRows(rows), y
}

func treeFactory(seed int64) Classifier {
	return tree.New(tree.Config{MaxFeatures: 1, Seed: seed})
}

func lrFactory(seed int64) Classifier {
	return linear.NewLogistic(linear.LogisticConfig{Seed: seed, Epochs: 30})
}

func TestFitPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := blobs(rng, 200, 3)
	b := New(Config{M: 15, New: treeFactory, Seed: 1})
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < X.Rows(); i++ {
		if b.Predict(X.Row(i)) == y[i] {
			correct++
		}
	}
	if frac := float64(correct) / float64(X.Rows()); frac < 0.95 {
		t.Fatalf("accuracy %v", frac)
	}
	if b.Size() != 15 || len(b.Estimators()) != 15 {
		t.Fatalf("size %d", b.Size())
	}
	if b.NumClasses() != 2 {
		t.Fatalf("classes %d", b.NumClasses())
	}
}

func TestVotesAndCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := blobs(rng, 100, 3)
	b := New(Config{M: 9, New: treeFactory, Seed: 2})
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	votes := b.Votes([]float64{0, 0})
	if len(votes) != 9 {
		t.Fatalf("%d votes", len(votes))
	}
	counts := b.VoteCounts([]float64{0, 0})
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 9 {
		t.Fatalf("counts %v must sum to 9", counts)
	}
}

func TestPredictProbaWithProbMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := blobs(rng, 100, 3)
	b := New(Config{M: 7, New: treeFactory, Seed: 3})
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p := b.PredictProba([]float64{-3, 0})
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("proba %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("proba sums to %v", sum)
	}
	if p[0] < 0.7 {
		t.Fatalf("deep in class 0 but P(0)=%v", p[0])
	}
}

func TestPredictProbaHardFallback(t *testing.T) {
	// SVMs have no PredictProba; the ensemble must fall back to vote
	// frequencies.
	rng := rand.New(rand.NewSource(4))
	X, y := blobs(rng, 100, 3)
	b := New(Config{M: 5, New: func(seed int64) Classifier {
		return linear.NewSVM(linear.SVMConfig{Seed: seed, Epochs: 50})
	}, Seed: 4})
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p := b.PredictProba([]float64{3, 0})
	if math.Abs(p[0]+p[1]-1) > 1e-9 {
		t.Fatalf("fallback proba %v", p)
	}
	if p[1] < 0.9 {
		t.Fatalf("unanimous votes expected deep in class 1, got %v", p)
	}
}

func TestRandomInitDiversity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := blobs(rng, 80, 3)
	b := New(Config{M: 5, New: lrFactory, Diversity: RandomInit, Seed: 5})
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if b.Size() != 5 {
		t.Fatalf("size %d", b.Size())
	}
	if Bootstrap.String() != "bootstrap" || RandomInit.String() != "random-init" || Diversity(9).String() == "" {
		t.Fatal("diversity strings")
	}
}

func TestConfigErrors(t *testing.T) {
	X := linalg.MustFromRows([][]float64{{1}, {2}})
	y := []int{0, 1}
	if err := New(Config{M: 0, New: treeFactory}).Fit(X, y); err == nil {
		t.Fatal("expected M error")
	}
	if err := New(Config{M: 3}).Fit(X, y); err == nil {
		t.Fatal("expected factory error")
	}
	if err := New(Config{M: 3, New: treeFactory}).Fit(linalg.New(0, 1), nil); err == nil {
		t.Fatal("expected empty error")
	}
	if err := New(Config{M: 3, New: treeFactory}).Fit(X, []int{0}); err == nil {
		t.Fatal("expected length error")
	}
}

type failingClassifier struct{ fail bool }

func (f *failingClassifier) Fit(X *linalg.Matrix, y []int) error {
	if f.fail {
		return errors.New("boom")
	}
	return nil
}
func (f *failingClassifier) Predict(x []float64) int { return 0 }

func TestMemberFitErrorAborts(t *testing.T) {
	X := linalg.MustFromRows([][]float64{{1}, {2}})
	y := []int{0, 1}
	b := New(Config{M: 3, New: func(seed int64) Classifier {
		return &failingClassifier{fail: seed%2 == 0 || true}
	}, Seed: 1})
	if err := b.Fit(X, y); err == nil {
		t.Fatal("expected member error")
	}
}

func TestKeepFitErrorsDropsFailures(t *testing.T) {
	X := linalg.MustFromRows([][]float64{{1}, {2}})
	y := []int{0, 1}
	i := 0
	b := New(Config{M: 4, KeepFitErrors: true, Workers: 1, New: func(seed int64) Classifier {
		i++
		return &failingClassifier{fail: i%2 == 0}
	}, Seed: 1})
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if b.Size() != 2 || len(b.FitErrors()) != 2 {
		t.Fatalf("size %d, errors %d", b.Size(), len(b.FitErrors()))
	}
}

func TestAllMembersFail(t *testing.T) {
	X := linalg.MustFromRows([][]float64{{1}, {2}})
	y := []int{0, 1}
	b := New(Config{M: 2, KeepFitErrors: true, New: func(seed int64) Classifier {
		return &failingClassifier{fail: true}
	}, Seed: 1})
	if err := b.Fit(X, y); err == nil {
		t.Fatal("expected all-failed error")
	}
}

func TestUnfittedPanics(t *testing.T) {
	b := New(Config{M: 3, New: treeFactory})
	for name, fn := range map[string]func(){
		"votes":      func() { b.Votes([]float64{1}) },
		"estimators": func() { b.Estimators() },
		"proba":      func() { b.PredictProba([]float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	if _, err := b.Truncated(1); err == nil {
		t.Fatal("expected unfitted error")
	}
}

func TestTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, y := blobs(rng, 80, 3)
	b := New(Config{M: 10, New: treeFactory, Seed: 6})
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	tr, err := b.Truncated(4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 4 {
		t.Fatalf("truncated size %d", tr.Size())
	}
	// Prefix members must be identical objects.
	for i := 0; i < 4; i++ {
		if tr.Estimators()[i] != b.Estimators()[i] {
			t.Fatal("truncation must share members")
		}
	}
	if _, err := b.Truncated(0); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := b.Truncated(11); err == nil {
		t.Fatal("expected range error")
	}
}

func TestDeterminismAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := blobs(rng, 100, 1.5)
	run := func(workers int) []int {
		b := New(Config{M: 8, New: treeFactory, Seed: 7, Workers: workers})
		if err := b.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		out := make([]int, 0, 50)
		for gx := -2.0; gx <= 2.0; gx += 0.1 {
			out = append(out, b.Predict([]float64{gx, 0.2}))
		}
		return out
	}
	a, c := run(1), run(8)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("ensemble must be deterministic regardless of workers")
		}
	}
}

func TestResample(t *testing.T) {
	X := linalg.MustFromRows([][]float64{{1}, {2}, {3}, {4}})
	y := []int{0, 0, 1, 1}
	rng := rand.New(rand.NewSource(1))
	bx, by := Resample(X, y, rng)
	if bx.Rows() != 4 || len(by) != 4 {
		t.Fatal("resample size")
	}
	// Every resampled row must be one of the originals with matching label.
	for i := 0; i < 4; i++ {
		v := bx.At(i, 0)
		found := false
		for j := 0; j < 4; j++ {
			if X.At(j, 0) == v && y[j] == by[i] {
				found = true
			}
		}
		if !found {
			t.Fatalf("resampled row %d (%v,%d) not in original", i, v, by[i])
		}
	}
}

// Property: vote counts always sum to ensemble size and Predict is a
// plurality vote.
func TestVoteInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	X, y := blobs(rng, 60, 2)
	b := New(Config{M: 7, New: treeFactory, Seed: 8})
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	f := func(a, c float64) bool {
		x := []float64{math.Mod(a, 6), math.Mod(c, 6)}
		counts := b.VoteCounts(x)
		sum := 0
		for _, v := range counts {
			sum += v
		}
		if sum != b.Size() {
			return false
		}
		pred := b.Predict(x)
		for _, v := range counts {
			if v > counts[pred] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxSamplesValidation(t *testing.T) {
	X := linalg.MustFromRows([][]float64{{1}, {2}})
	y := []int{0, 1}
	if err := New(Config{M: 2, New: treeFactory, MaxSamples: -0.5}).Fit(X, y); err == nil {
		t.Fatal("expected max samples error")
	}
	if err := New(Config{M: 2, New: treeFactory, MaxSamples: 1.5}).Fit(X, y); err == nil {
		t.Fatal("expected max samples error")
	}
	if err := New(Config{M: 2, New: treeFactory, MaxFeatures: -0.1}).Fit(X, y); err == nil {
		t.Fatal("expected max features error")
	}
	if err := New(Config{M: 2, New: treeFactory, MaxFeatures: 1.1}).Fit(X, y); err == nil {
		t.Fatal("expected max features error")
	}
}

func TestMaxSamplesShrinksReplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	X, y := blobs(rng, 100, 3)
	b := New(Config{M: 5, New: treeFactory, MaxSamples: 0.2, Seed: 10})
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if b.Size() != 5 {
		t.Fatal("fit failed")
	}
	// Tiny MaxSamples floors at one sample.
	b2 := New(Config{M: 3, New: treeFactory, MaxSamples: 1e-9, Seed: 10})
	if err := b2.Fit(X, y); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFeaturesSubspaces(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	X, y := blobs(rng, 150, 3)
	b := New(Config{M: 9, New: lrFactory, MaxFeatures: 0.5, Seed: 11})
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Subspaced members still classify the easy blobs correctly overall.
	correct := 0
	for i := 0; i < X.Rows(); i++ {
		if b.Predict(X.Row(i)) == y[i] {
			correct++
		}
	}
	if frac := float64(correct) / float64(X.Rows()); frac < 0.9 {
		t.Fatalf("subspace ensemble accuracy %v", frac)
	}
	// Truncation carries the feature subsets along.
	tr, err := b.Truncated(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict(X.Row(0)); got != 0 && got != 1 {
		t.Fatal("truncated subspace ensemble must predict")
	}
}

func TestMemberProbas(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	X, y := blobs(rng, 100, 3)
	// Tree members implement ProbClassifier.
	b := New(Config{M: 5, New: treeFactory, Seed: 12})
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	probs := b.MemberProbas([]float64{-3, 0})
	if len(probs) != 5 {
		t.Fatalf("%d member posteriors", len(probs))
	}
	for _, p := range probs {
		if len(p) != 2 {
			t.Fatalf("posterior %v", p)
		}
		var sum float64
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("posterior sums to %v", sum)
		}
	}
	// SVM members fall back to one-hot votes.
	bs := New(Config{M: 3, New: func(seed int64) Classifier {
		return linear.NewSVM(linear.SVMConfig{Seed: seed, Epochs: 40})
	}, Seed: 12})
	if err := bs.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for _, p := range bs.MemberProbas([]float64{3, 0}) {
		ones := 0
		for _, v := range p {
			if v == 1 {
				ones++
			} else if v != 0 {
				t.Fatalf("hard member posterior %v should be one-hot", p)
			}
		}
		if ones != 1 {
			t.Fatalf("one-hot posterior %v", p)
		}
	}
	// Unfitted panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		New(Config{M: 1, New: treeFactory}).MemberProbas([]float64{0, 0})
	}()
}
