module trusthmd

go 1.24
